//! The host-op DSL and CPU state machine.
//!
//! Host code in the evaluation — the Fig. 6 GPU-TN host sequence, the HDN
//! launch/wait/send loop, the GDS pre-post pattern, and the pure-CPU
//! baselines — is expressed as a [`HostProgram`]: a sequence of [`HostOp`]s
//! executed serially by one [`Cpu`] with simulated costs from
//! [`crate::HostConfig`]. The CPU is sans-IO like every other component:
//! kernel launches, NIC doorbells, and trigger-address writes surface as
//! [`CpuOutput`]s for the cluster glue to route.

use crate::config::HostConfig;
use gtn_gpu::KernelLaunch;
use gtn_mem::{Addr, MemPool};
use gtn_nic::nic::NicCommand;
use gtn_nic::Tag;
use gtn_sim::stats::StatSet;
use gtn_sim::time::{SimDuration, SimTime};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A functional effect on simulated memory executed by host code.
pub type HostFn = Arc<dyn Fn(&mut MemPool) + Send + Sync>;
/// A NIC command constructed from memory contents at execution time
/// (e.g. a rendezvous sender building its payload put from the receive
/// address the CTS message carried).
pub type CmdFn = Arc<dyn Fn(&MemPool) -> NicCommand + Send + Sync>;

/// One host operation.
#[derive(Clone)]
pub enum HostOp {
    /// Spend CPU time (compute regions, stack costs not covered below).
    Compute(SimDuration),
    /// Apply a functional memory effect (zero time; pair with `Compute`).
    Func(HostFn),
    /// Enqueue a kernel on the local GPU (costs `kernel_dispatch_ns`, then
    /// the GPU's own launch pipeline takes over).
    LaunchKernel(KernelLaunch),
    /// Block until the kernel with this label completes (including
    /// teardown).
    WaitKernel(String),
    /// Ring the local NIC's doorbell with a command. An immediate
    /// [`NicCommand::Put`] costs the full send stack; a
    /// [`NicCommand::TriggeredPut`] costs the cheaper triggered-post path.
    NicPost(NicCommand),
    /// Ring the doorbell with a command **built from memory at execution
    /// time** — the rendezvous-protocol sender's payload put, whose
    /// destination arrives in the CTS message.
    NicPostDynamic(CmdFn),
    /// Write a tag to the local NIC's trigger address from the CPU
    /// (GDS-style doorbell by proxy, and useful in tests).
    TriggerWrite(Tag),
    /// Spin on a 64-bit flag until it reaches `at_least`.
    Poll {
        /// Flag address (usually an MPI mailbox arrival counter).
        addr: Addr,
        /// Wake condition.
        at_least: u64,
    },
}

impl fmt::Debug for HostOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostOp::Compute(d) => write!(f, "Compute({d})"),
            HostOp::Func(_) => write!(f, "Func(..)"),
            HostOp::LaunchKernel(k) => write!(f, "LaunchKernel({})", k.label),
            HostOp::WaitKernel(l) => write!(f, "WaitKernel({l})"),
            HostOp::NicPost(c) => write!(f, "NicPost({c:?})"),
            HostOp::NicPostDynamic(_) => write!(f, "NicPostDynamic(..)"),
            HostOp::TriggerWrite(t) => write!(f, "TriggerWrite({t})"),
            HostOp::Poll { at_least, .. } => write!(f, "Poll(>={at_least})"),
        }
    }
}

/// An executable host program.
#[derive(Debug, Clone, Default)]
pub struct HostProgram {
    ops: Vec<HostOp>,
}

impl HostProgram {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append any op.
    pub fn push(&mut self, op: HostOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Append a compute phase.
    pub fn compute(&mut self, d: SimDuration) -> &mut Self {
        self.push(HostOp::Compute(d))
    }

    /// Append a functional effect.
    pub fn func(&mut self, f: impl Fn(&mut MemPool) + Send + Sync + 'static) -> &mut Self {
        self.push(HostOp::Func(Arc::new(f)))
    }

    /// Append a kernel launch.
    pub fn launch(&mut self, k: KernelLaunch) -> &mut Self {
        self.push(HostOp::LaunchKernel(k))
    }

    /// Append a kernel wait.
    pub fn wait_kernel(&mut self, label: &str) -> &mut Self {
        self.push(HostOp::WaitKernel(label.to_owned()))
    }

    /// Append a NIC post.
    pub fn nic_post(&mut self, cmd: NicCommand) -> &mut Self {
        self.push(HostOp::NicPost(cmd))
    }

    /// Append a runtime-built NIC post.
    pub fn nic_post_dynamic(
        &mut self,
        f: impl Fn(&MemPool) -> NicCommand + Send + Sync + 'static,
    ) -> &mut Self {
        self.push(HostOp::NicPostDynamic(Arc::new(f)))
    }

    /// Append a CPU trigger-address write.
    pub fn trigger_write(&mut self, tag: Tag) -> &mut Self {
        self.push(HostOp::TriggerWrite(tag))
    }

    /// Append a flag poll.
    pub fn poll(&mut self, addr: Addr, at_least: u64) -> &mut Self {
        self.push(HostOp::Poll { addr, at_least })
    }

    /// Append all ops of another fragment.
    pub fn extend(&mut self, ops: Vec<HostOp>) -> &mut Self {
        self.ops.extend(ops);
        self
    }

    /// The op sequence.
    pub fn ops(&self) -> &[HostOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Events the CPU reacts to.
#[derive(Debug)]
pub enum CpuEvent {
    /// Begin / resume program execution.
    Step,
    /// The local GPU finished the kernel with this label.
    KernelDone(String),
}

/// Follow-ups for the cluster glue.
#[derive(Debug)]
pub enum CpuOutput {
    /// Schedule `ev` back on this CPU at `at`.
    Local {
        /// Fire time.
        at: SimTime,
        /// Event.
        ev: CpuEvent,
    },
    /// Enqueue `launch` on the local GPU at `at`.
    EnqueueKernel {
        /// Time the runtime call completes.
        at: SimTime,
        /// The kernel.
        launch: KernelLaunch,
    },
    /// Ring the local NIC doorbell at `at`.
    Doorbell {
        /// Time the doorbell store issues.
        at: SimTime,
        /// The command.
        cmd: NicCommand,
    },
    /// The CPU stored `tag` to the local NIC's trigger address at `at`.
    TriggerWrite {
        /// Store time.
        at: SimTime,
        /// Tag written.
        tag: Tag,
    },
    /// The program ran to completion at `at`.
    Finished {
        /// Completion time.
        at: SimTime,
    },
}

/// One node's host CPU executing a [`HostProgram`].
#[derive(Debug)]
pub struct Cpu {
    cfg: HostConfig,
    program: HostProgram,
    pc: usize,
    completed_kernels: HashSet<String>,
    waiting_on: Option<String>,
    finished: bool,
    /// First unsatisfied check of the poll currently spinning, if any;
    /// feeds the `poll_wait` histogram (the CQ-poll stage of the Fig. 8
    /// decomposition) when the poll finally hits.
    poll_started: Option<SimTime>,
    stats: StatSet,
}

impl Cpu {
    /// A CPU that will execute `program`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: HostConfig, program: HostProgram) -> Self {
        cfg.validate().expect("invalid host config");
        Cpu {
            cfg,
            program,
            pc: 0,
            completed_kernels: HashSet::new(),
            waiting_on: None,
            finished: false,
            poll_started: None,
            stats: StatSet::new(),
        }
    }

    /// Whether the program has run to completion.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Program counter: index of the op currently executing or blocked.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Total ops in the program.
    pub fn program_len(&self) -> usize {
        self.program.len()
    }

    /// The kernel label this CPU is blocked on, if any.
    pub fn waiting_on(&self) -> Option<&str> {
        self.waiting_on.as_deref()
    }

    /// The op at the current program counter (None once finished). Stall
    /// diagnostics render this to say what a stuck node was doing.
    pub fn current_op(&self) -> Option<&HostOp> {
        self.program.ops().get(self.pc)
    }

    /// Activity counters.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Handle one event at `now`.
    pub fn handle(&mut self, now: SimTime, ev: CpuEvent, mem: &mut MemPool) -> Vec<CpuOutput> {
        match ev {
            CpuEvent::Step => self.step(now, mem),
            CpuEvent::KernelDone(label) => {
                self.completed_kernels.insert(label.clone());
                if self.waiting_on.as_deref() == Some(label.as_str()) {
                    self.waiting_on = None;
                    // The wait op itself completes: advance past it.
                    self.pc += 1;
                    self.step(now, mem)
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn step(&mut self, now: SimTime, mem: &mut MemPool) -> Vec<CpuOutput> {
        debug_assert!(self.waiting_on.is_none(), "stepping a blocked CPU");
        let mut out = Vec::new();
        loop {
            if self.pc >= self.program.len() {
                if !self.finished {
                    self.finished = true;
                    out.push(CpuOutput::Finished { at: now });
                }
                return out;
            }
            // Clone the op handle (cheap: Arc'd closures / small data).
            let op = self.program.ops()[self.pc].clone();
            match op {
                HostOp::Compute(d) => {
                    self.pc += 1;
                    self.stats.inc("compute_phases");
                    out.push(CpuOutput::Local {
                        at: now + d,
                        ev: CpuEvent::Step,
                    });
                    return out;
                }
                HostOp::Func(f) => {
                    f(mem);
                    self.stats.inc("func_ops");
                    self.pc += 1;
                }
                HostOp::LaunchKernel(launch) => {
                    let at = now + self.cfg.kernel_dispatch();
                    self.stats.inc("kernel_launches");
                    out.push(CpuOutput::EnqueueKernel { at, launch });
                    self.pc += 1;
                    out.push(CpuOutput::Local {
                        at,
                        ev: CpuEvent::Step,
                    });
                    return out;
                }
                HostOp::WaitKernel(label) => {
                    if self.completed_kernels.contains(&label) {
                        self.pc += 1;
                        continue;
                    }
                    self.stats.inc("kernel_waits");
                    self.waiting_on = Some(label);
                    return out;
                }
                HostOp::NicPostDynamic(f) => {
                    let cmd = f(mem);
                    let cost = match &cmd {
                        NicCommand::Put(_) => {
                            self.stats.inc("sends_posted");
                            self.cfg.send_stack()
                        }
                        NicCommand::TriggeredPut { .. } => {
                            self.stats.inc("triggered_posted");
                            self.cfg.post_triggered()
                        }
                    };
                    let at = now + cost;
                    out.push(CpuOutput::Doorbell { at, cmd });
                    self.pc += 1;
                    out.push(CpuOutput::Local {
                        at,
                        ev: CpuEvent::Step,
                    });
                    return out;
                }
                HostOp::NicPost(cmd) => {
                    let cost = match &cmd {
                        NicCommand::Put(_) => {
                            self.stats.inc("sends_posted");
                            self.cfg.send_stack()
                        }
                        NicCommand::TriggeredPut { .. } => {
                            self.stats.inc("triggered_posted");
                            self.cfg.post_triggered()
                        }
                    };
                    let at = now + cost;
                    out.push(CpuOutput::Doorbell { at, cmd });
                    self.pc += 1;
                    out.push(CpuOutput::Local {
                        at,
                        ev: CpuEvent::Step,
                    });
                    return out;
                }
                HostOp::TriggerWrite(tag) => {
                    let at = now + SimDuration::from_ns(10);
                    self.stats.inc("trigger_writes");
                    out.push(CpuOutput::TriggerWrite { at, tag });
                    self.pc += 1;
                    out.push(CpuOutput::Local {
                        at,
                        ev: CpuEvent::Step,
                    });
                    return out;
                }
                HostOp::Poll { addr, at_least } => {
                    if mem.read_u64(addr) >= at_least {
                        self.stats.inc("poll_hits");
                        // CQ-poll stage: time from the first unsatisfied
                        // check to the hit (0 when satisfied immediately).
                        let started = self.poll_started.take().unwrap_or(now);
                        self.stats.record("poll_wait", now - started);
                        self.pc += 1;
                        continue;
                    }
                    self.stats.inc("poll_retries");
                    self.poll_started.get_or_insert(now);
                    out.push(CpuOutput::Local {
                        at: now + SimDuration::from_ns(self.cfg.poll_interval_ns),
                        ev: CpuEvent::Step,
                    });
                    return out;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_mem::NodeId;
    use gtn_sim::Engine;

    struct Harness {
        cpu: Cpu,
        mem: MemPool,
        engine: Engine<CpuEvent>,
        doorbells: Vec<(SimTime, NicCommand)>,
        launches: Vec<(SimTime, String)>,
        finished_at: Option<SimTime>,
    }

    impl Harness {
        fn new(program: HostProgram) -> Self {
            Harness {
                cpu: Cpu::new(HostConfig::default(), program),
                mem: MemPool::new(1),
                engine: Engine::new(),
                doorbells: Vec::new(),
                launches: Vec::new(),
                finished_at: None,
            }
        }

        fn run(&mut self) {
            self.engine.schedule_at(SimTime::ZERO, CpuEvent::Step);
            let cpu = &mut self.cpu;
            let mem = &mut self.mem;
            let doorbells = &mut self.doorbells;
            let launches = &mut self.launches;
            let finished = &mut self.finished_at;
            self.engine.run(|eng, ev| {
                for out in cpu.handle(eng.now(), ev, mem) {
                    match out {
                        CpuOutput::Local { at, ev } => eng.schedule_at(at, ev),
                        CpuOutput::Doorbell { at, cmd } => doorbells.push((at, cmd)),
                        CpuOutput::EnqueueKernel { at, launch } => {
                            launches.push((at, launch.label))
                        }
                        CpuOutput::TriggerWrite { .. } => {}
                        CpuOutput::Finished { at } => *finished = Some(at),
                    }
                }
            });
        }
    }

    fn put_cmd() -> NicCommand {
        NicCommand::Put(gtn_nic::NetOp::Put {
            src: Addr::base(NodeId(0), gtn_mem::RegionId(0)),
            len: 8,
            target: NodeId(0),
            dst: Addr::base(NodeId(0), gtn_mem::RegionId(0)),
            notify: None,
            completion: None,
        })
    }

    #[test]
    fn compute_phases_accumulate() {
        let mut p = HostProgram::new();
        p.compute(SimDuration::from_ns(100))
            .compute(SimDuration::from_ns(200));
        let mut h = Harness::new(p);
        h.run();
        assert_eq!(h.finished_at, Some(SimTime::from_ns(300)));
    }

    #[test]
    fn send_costs_full_stack_and_triggered_costs_less() {
        let mut p = HostProgram::new();
        p.nic_post(put_cmd());
        let mut h = Harness::new(p);
        h.run();
        assert_eq!(h.doorbells.len(), 1);
        assert_eq!(h.doorbells[0].0, SimTime::from_ns(300));

        let mut p = HostProgram::new();
        p.nic_post(NicCommand::TriggeredPut {
            tag: Tag(0),
            threshold: 1,
            op: match put_cmd() {
                NicCommand::Put(op) => op,
                _ => unreachable!(),
            },
        });
        let mut h = Harness::new(p);
        h.run();
        assert_eq!(h.doorbells[0].0, SimTime::from_ns(150));
    }

    #[test]
    fn wait_kernel_blocks_until_done_event() {
        let mut p = HostProgram::new();
        p.launch(KernelLaunch::empty("k"))
            .wait_kernel("k")
            .compute(SimDuration::from_ns(50));
        let mut h = Harness::new(p);
        // Run: CPU dispatches the kernel then blocks.
        h.run();
        assert!(h.finished_at.is_none());
        assert_eq!(h.launches.len(), 1);
        assert_eq!(h.launches[0].0, SimTime::from_ns(150), "dispatch cost");
        // Deliver completion at 5 us.
        h.engine
            .schedule_at(SimTime::from_us(5), CpuEvent::KernelDone("k".into()));
        h.run2();
        assert_eq!(h.finished_at, Some(SimTime::from_ns(5_050)));
    }

    impl Harness {
        /// Re-run after injecting more events (the engine retains state).
        fn run2(&mut self) {
            let cpu = &mut self.cpu;
            let mem = &mut self.mem;
            let doorbells = &mut self.doorbells;
            let launches = &mut self.launches;
            let finished = &mut self.finished_at;
            self.engine.run(|eng, ev| {
                for out in cpu.handle(eng.now(), ev, mem) {
                    match out {
                        CpuOutput::Local { at, ev } => eng.schedule_at(at, ev),
                        CpuOutput::Doorbell { at, cmd } => doorbells.push((at, cmd)),
                        CpuOutput::EnqueueKernel { at, launch } => {
                            launches.push((at, launch.label))
                        }
                        CpuOutput::TriggerWrite { .. } => {}
                        CpuOutput::Finished { at } => *finished = Some(at),
                    }
                }
            });
        }
    }

    #[test]
    fn kernel_done_before_wait_does_not_block() {
        let mut p = HostProgram::new();
        p.wait_kernel("early");
        let mut h = Harness::new(p);
        h.engine
            .schedule_at(SimTime::ZERO, CpuEvent::KernelDone("early".into()));
        h.run();
        assert!(h.finished_at.is_some());
    }

    #[test]
    fn poll_spins_until_flag() {
        let mut p = HostProgram::new();
        let mut h;
        {
            let flag = Addr::base(NodeId(0), gtn_mem::RegionId(0));
            p.poll(flag, 1).compute(SimDuration::from_ns(10));
            h = Harness::new(p);
            let r = h.mem.alloc(NodeId(0), 8, "flag");
            assert_eq!(r, gtn_mem::RegionId(0));
        }
        // Run a bounded slice: CPU should still be polling.
        h.engine.schedule_at(SimTime::ZERO, CpuEvent::Step);
        let cpu = &mut h.cpu;
        let mem = &mut h.mem;
        let mut steps = 0;
        h.engine.run_until(SimTime::from_ns(500), |eng, ev| {
            steps += 1;
            for out in cpu.handle(eng.now(), ev, mem) {
                if let CpuOutput::Local { at, ev } = out {
                    eng.schedule_at(at, ev);
                }
            }
            // Set the flag at ~200 ns.
            if eng.now() >= SimTime::from_ns(200)
                && mem.read_u64(Addr::base(NodeId(0), gtn_mem::RegionId(0))) == 0
            {
                mem.write_u64(Addr::base(NodeId(0), gtn_mem::RegionId(0)), 1);
            }
        });
        assert!(cpu.stats().counter("poll_retries") >= 4);
        assert_eq!(cpu.stats().counter("poll_hits"), 1);
        assert!(cpu.is_finished());
        // The CQ-poll stage: spin time from first check to the hit.
        let wait = cpu
            .stats()
            .histogram("poll_wait")
            .expect("poll_wait recorded");
        assert_eq!(wait.count(), 1);
        assert!(
            wait.mean() >= SimDuration::from_ns(200),
            "flag was set at ~200ns: {:?}",
            wait.mean()
        );
    }

    #[test]
    fn immediately_satisfied_poll_records_zero_wait() {
        let mut p = HostProgram::new();
        let flag = Addr::base(NodeId(0), gtn_mem::RegionId(0));
        p.poll(flag, 1);
        let mut h = Harness::new(p);
        h.mem.alloc(NodeId(0), 8, "flag");
        h.mem.write_u64(flag, 1);
        h.run();
        let wait = h.cpu.stats().histogram("poll_wait").expect("recorded");
        assert_eq!(wait.count(), 1);
        assert_eq!(wait.mean(), SimDuration::ZERO);
    }

    #[test]
    fn func_mutates_memory_in_program_order() {
        let mut p = HostProgram::new();
        let flag = Addr::base(NodeId(0), gtn_mem::RegionId(0));
        p.func(move |mem| mem.write_u64(flag, 7))
            .compute(SimDuration::from_ns(1))
            .func(move |mem| {
                let v = mem.read_u64(flag);
                mem.write_u64(flag, v * 6);
            });
        let mut h = Harness::new(p);
        h.mem.alloc(NodeId(0), 8, "flag");
        h.run();
        assert_eq!(h.mem.read_u64(flag), 42);
    }

    #[test]
    fn empty_program_finishes_immediately() {
        let mut h = Harness::new(HostProgram::new());
        h.run();
        assert_eq!(h.finished_at, Some(SimTime::ZERO));
        assert!(h.cpu.is_finished());
    }
}
