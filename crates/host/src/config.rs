//! Host CPU configuration (Table 2, "CPU and Memory Configuration") plus
//! runtime-call costs.
//!
//! The cost split mirrors Table 1's overhead taxonomy: HDN pays the **full
//! network stack** per message on the critical path (`send_stack_ns`);
//! GDS and GPU-TN pay only a **partial network stack** up front
//! (`post_triggered_ns`), off the critical path.

use gtn_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the host CPU and its runtimes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostConfig {
    /// Core clock, GHz. Paper: 4 GHz.
    pub clock_ghz: f64,
    /// Core count. Paper: 8.
    pub cores: u32,
    /// FP32 operations per cycle per core (SIMD width × FMA).
    pub flops_per_cycle: u32,
    /// Parallel efficiency of OpenMP-style regions (synchronization and
    /// imbalance losses).
    pub parallel_efficiency: f64,
    /// Sustained memcpy bandwidth, GB/s (share of the DDR4 channels).
    pub memcpy_gbps: f64,
    /// Full network-stack cost of initiating one two-sided message
    /// (marshalling, tag matching, command build, doorbell) — the HDN
    /// critical-path "Send" of Fig. 8.
    pub send_stack_ns: u64,
    /// Receive-side stack cost per message (progress + matching).
    pub recv_stack_ns: u64,
    /// Cost of posting one pre-built triggered operation / pre-registered
    /// put (the "partial network stack" of Table 1).
    pub post_triggered_ns: u64,
    /// Runtime cost of enqueuing a kernel to the GPU (driver + queue write),
    /// before the GPU's own launch latency.
    pub kernel_dispatch_ns: u64,
    /// CPU flag-poll interval, nanoseconds.
    pub poll_interval_ns: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            clock_ghz: 4.0,
            cores: 8,
            flops_per_cycle: 16, // AVX2-class FMA on f32
            parallel_efficiency: 0.85,
            memcpy_gbps: 20.0,
            send_stack_ns: 300,
            recv_stack_ns: 150,
            post_triggered_ns: 150,
            kernel_dispatch_ns: 150,
            poll_interval_ns: 40,
        }
    }
}

impl HostConfig {
    /// Duration of the full send stack.
    pub fn send_stack(&self) -> SimDuration {
        SimDuration::from_ns(self.send_stack_ns)
    }

    /// Duration of the receive stack.
    pub fn recv_stack(&self) -> SimDuration {
        SimDuration::from_ns(self.recv_stack_ns)
    }

    /// Duration of posting a triggered/pre-registered operation.
    pub fn post_triggered(&self) -> SimDuration {
        SimDuration::from_ns(self.post_triggered_ns)
    }

    /// Duration of a kernel dispatch call.
    pub fn kernel_dispatch(&self) -> SimDuration {
        SimDuration::from_ns(self.kernel_dispatch_ns)
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_ghz <= 0.0 || self.cores == 0 {
            return Err("clock and cores must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.parallel_efficiency) || self.parallel_efficiency == 0.0 {
            return Err(format!(
                "parallel_efficiency must be in (0,1]: {}",
                self.parallel_efficiency
            ));
        }
        if self.poll_interval_ns == 0 {
            return Err("poll_interval_ns must be nonzero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = HostConfig::default();
        assert_eq!(c.clock_ghz, 4.0);
        assert_eq!(c.cores, 8);
        assert!(c.validate().is_ok());
        assert_eq!(c.send_stack(), SimDuration::from_ns(300));
        assert!(
            c.post_triggered() < c.send_stack(),
            "Table 1: partial < full stack"
        );
    }

    #[test]
    fn validation() {
        let c = HostConfig {
            parallel_efficiency: 0.0,
            ..HostConfig::default()
        };
        assert!(c.validate().is_err());
        let c = HostConfig {
            cores: 0,
            ..HostConfig::default()
        };
        assert!(c.validate().is_err());
        let c = HostConfig {
            poll_interval_ns: 0,
            ..HostConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
