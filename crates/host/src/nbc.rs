//! libNBC-style non-blocking collective schedules (§5.4.1).
//!
//! "When a collective application is called from the application, libNBC
//! creates a schedule of subtasks that completely define all operations and
//! dependencies" — and that schedule shape "maps perfectly to the triggered
//! operation semantics in GPU-TN". This module is that schedule generator:
//! collectives compile to [`Round`]s of send / recv / reduce subtasks, which
//! the strategy layer lowers to host programs (CPU/HDN), pre-posted
//! operations plus kernel-boundary doorbells (GDS), or pre-registered
//! triggered puts driven from a single persistent kernel (GPU-TN).
//!
//! The generator implemented here is the ring Allreduce of Fig. 2/Fig. 10:
//! a reduce-scatter phase followed by an allgather phase, `2(P−1)` rounds
//! total, each moving `N/P` elements to the ring successor.

use serde::{Deserialize, Serialize};

/// One subtask of a schedule round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NbcOp {
    /// Send `chunk` (by index) to `peer`.
    Send {
        /// Destination rank.
        peer: u32,
        /// Chunk index within the vector.
        chunk: u32,
    },
    /// Receive `chunk` from `peer` into the staging area.
    Recv {
        /// Source rank.
        peer: u32,
        /// Chunk index within the vector.
        chunk: u32,
    },
    /// Combine the received copy of `chunk` into the local vector
    /// (the user-specified binary op; `+` in the evaluation).
    Reduce {
        /// Chunk index.
        chunk: u32,
    },
    /// Overwrite the local copy of `chunk` with the received (already fully
    /// reduced) copy — the allgather phase's commit.
    Replace {
        /// Chunk index.
        chunk: u32,
    },
}

/// A set of subtasks that may proceed once the previous round completed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Round(pub Vec<NbcOp>);

/// A complete collective schedule for one rank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Rank this schedule belongs to.
    pub rank: u32,
    /// Participating ranks.
    pub n_ranks: u32,
    /// The rounds, in dependency order.
    pub rounds: Vec<Round>,
}

/// Element range `[offset, offset+len)` of chunk `c` when `total` elements
/// are split across `p` chunks (remainder spread over the leading chunks).
pub fn chunk_range(c: u32, total: u64, p: u32) -> (u64, u64) {
    let p64 = p as u64;
    let c64 = c as u64;
    let base = total / p64;
    let rem = total % p64;
    let len = base + u64::from(c64 < rem);
    let offset = c64 * base + c64.min(rem);
    (offset, len)
}

/// The ring Allreduce schedule for `rank` of `n_ranks`.
///
/// Reduce-scatter rounds `r = 0..P−1`: rank `i` sends chunk `(i − r) mod P`
/// to `(i+1) mod P` and receives+reduces chunk `(i − r − 1) mod P`.
/// Allgather rounds: rank `i` sends chunk `(i + 1 − r) mod P` and
/// receives+replaces chunk `(i − r) mod P`.
pub fn ring_allreduce(rank: u32, n_ranks: u32) -> Schedule {
    assert!(n_ranks >= 2, "allreduce needs at least 2 ranks");
    assert!(rank < n_ranks);
    let p = n_ranks;
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let md = |x: i64| ((x % p as i64 + p as i64) % p as i64) as u32;

    let mut rounds = Vec::with_capacity(2 * (p as usize - 1));
    for r in 0..p - 1 {
        let send_chunk = md(rank as i64 - r as i64);
        let recv_chunk = md(rank as i64 - r as i64 - 1);
        rounds.push(Round(vec![
            NbcOp::Send {
                peer: next,
                chunk: send_chunk,
            },
            NbcOp::Recv {
                peer: prev,
                chunk: recv_chunk,
            },
            NbcOp::Reduce { chunk: recv_chunk },
        ]));
    }
    for r in 0..p - 1 {
        let send_chunk = md(rank as i64 + 1 - r as i64);
        let recv_chunk = md(rank as i64 - r as i64);
        rounds.push(Round(vec![
            NbcOp::Send {
                peer: next,
                chunk: send_chunk,
            },
            NbcOp::Recv {
                peer: prev,
                chunk: recv_chunk,
            },
            NbcOp::Replace { chunk: recv_chunk },
        ]));
    }
    Schedule {
        rank,
        n_ranks,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn chunk_ranges_partition_the_vector() {
        for (total, p) in [(100u64, 4u32), (7, 3), (8 * 1024 * 1024 / 4, 32), (5, 8)] {
            let mut covered = 0u64;
            let mut next_offset = 0u64;
            for c in 0..p {
                let (off, len) = chunk_range(c, total, p);
                assert_eq!(off, next_offset, "chunks contiguous");
                next_offset = off + len;
                covered += len;
            }
            assert_eq!(covered, total, "total={total} p={p}");
        }
    }

    #[test]
    fn schedule_has_2p_minus_2_rounds() {
        for p in [2u32, 3, 8, 32] {
            let s = ring_allreduce(0, p);
            assert_eq!(s.rounds.len(), 2 * (p as usize - 1));
        }
    }

    /// Symbolic execution: track, per rank and chunk, the set of ranks whose
    /// contribution is folded in. After the whole schedule every rank must
    /// hold every chunk with contributions from every rank.
    #[test]
    fn symbolic_replay_produces_full_reduction_everywhere() {
        for p in [2u32, 3, 4, 5, 8, 16] {
            let schedules: Vec<Schedule> = (0..p).map(|r| ring_allreduce(r, p)).collect();
            // state[rank][chunk] = contributor set
            let mut state: Vec<Vec<BTreeSet<u32>>> = (0..p)
                .map(|r| (0..p).map(|_| BTreeSet::from([r])).collect())
                .collect();
            let n_rounds = schedules[0].rounds.len();
            for round in 0..n_rounds {
                // Gather all sends of this round first (rounds are
                // lock-step).
                let mut in_flight: Vec<(u32, u32, BTreeSet<u32>)> = Vec::new(); // (to, chunk, set)
                for s in &schedules {
                    for op in &s.rounds[round].0 {
                        if let NbcOp::Send { peer, chunk } = op {
                            in_flight.push((
                                *peer,
                                *chunk,
                                state[s.rank as usize][*chunk as usize].clone(),
                            ));
                        }
                    }
                }
                for s in &schedules {
                    for op in &s.rounds[round].0 {
                        match op {
                            NbcOp::Recv { peer, chunk } => {
                                // Must exist exactly one matching in-flight message.
                                let matches: Vec<_> = in_flight
                                    .iter()
                                    .filter(|(to, c, _)| *to == s.rank && c == chunk)
                                    .collect();
                                assert_eq!(
                                    matches.len(),
                                    1,
                                    "p={p} round={round} rank={} chunk={chunk} peer={peer}",
                                    s.rank
                                );
                            }
                            NbcOp::Reduce { chunk } => {
                                let (_, _, set) = in_flight
                                    .iter()
                                    .find(|(to, c, _)| *to == s.rank && c == chunk)
                                    .unwrap()
                                    .clone();
                                state[s.rank as usize][*chunk as usize].extend(set);
                            }
                            NbcOp::Replace { chunk } => {
                                let (_, _, set) = in_flight
                                    .iter()
                                    .find(|(to, c, _)| *to == s.rank && c == chunk)
                                    .unwrap()
                                    .clone();
                                state[s.rank as usize][*chunk as usize] = set;
                            }
                            NbcOp::Send { .. } => {}
                        }
                    }
                }
            }
            let full: BTreeSet<u32> = (0..p).collect();
            for r in 0..p {
                for c in 0..p {
                    assert_eq!(
                        state[r as usize][c as usize], full,
                        "p={p} rank={r} chunk={c} incomplete"
                    );
                }
            }
        }
    }

    #[test]
    fn sends_go_to_ring_successor_only() {
        let p = 8;
        for r in 0..p {
            let s = ring_allreduce(r, p);
            for round in &s.rounds {
                for op in &round.0 {
                    match op {
                        NbcOp::Send { peer, .. } => assert_eq!(*peer, (r + 1) % p),
                        NbcOp::Recv { peer, .. } => assert_eq!(*peer, (r + p - 1) % p),
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 ranks")]
    fn single_rank_rejected() {
        let _ = ring_allreduce(0, 1);
    }
}
