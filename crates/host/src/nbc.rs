//! libNBC-style non-blocking collective schedules (§5.4.1).
//!
//! "When a collective application is called from the application, libNBC
//! creates a schedule of subtasks that completely define all operations and
//! dependencies" — and that schedule shape "maps perfectly to the triggered
//! operation semantics in GPU-TN". This module is that schedule generator:
//! collectives compile to [`Round`]s of send / recv / reduce subtasks, which
//! the strategy layer lowers to host programs (CPU/HDN), pre-posted
//! operations plus kernel-boundary doorbells (GDS), or pre-registered
//! triggered puts driven from a single persistent kernel (GPU-TN).
//!
//! Three Allreduce generators and one AllGather are implemented:
//!
//! * [`ring_allreduce`] — the ring of Fig. 2/Fig. 10: a reduce-scatter
//!   phase followed by an allgather phase, `2(P−1)` rounds total, each
//!   moving `N/P` elements to the ring successor.
//! * [`tree_allreduce`] — a binomial reduce onto rank 0 followed by the
//!   mirrored broadcast, `2⌈log₂P⌉` rounds moving the whole vector;
//!   latency-optimal for small vectors, bandwidth-poor for large ones.
//! * [`hierarchical_allreduce`] — Rabenseifner-style: binomial reduce
//!   inside each group onto its leader, a ring allreduce among the
//!   leaders (one chunk per group), then the mirrored intra-group
//!   broadcast. On a multi-tier fabric the leader ring is the only
//!   cross-group traffic.
//! * [`rhd_allreduce`] — recursive halving-doubling (power-of-two `P`):
//!   a reduce-scatter of `log₂P` pairwise exchanges at distances
//!   `P/2, P/4, …, 1` with message sizes `N/2, N/4, …, N/P`, mirrored
//!   into the allgather. Bandwidth-optimal like the ring but in
//!   logarithmic rounds — and maximally bisection-hungry: the first
//!   round crosses half the machine with half the vector from every
//!   rank at once.
//! * [`ring_allgather`] — each rank contributes one chunk and after
//!   `P−1` rounds every rank holds all of them.
//!
//! All generators emit globally lock-step rounds: every rank's schedule
//! has the same round count (a rank idle in a round has an empty round),
//! so strategy lowerings can index per-round completion flags uniformly.

use serde::{Deserialize, Serialize};

/// One subtask of a schedule round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NbcOp {
    /// Send `chunk` (by index) to `peer`.
    Send {
        /// Destination rank.
        peer: u32,
        /// Chunk index within the vector.
        chunk: u32,
    },
    /// Receive `chunk` from `peer` into the staging area.
    Recv {
        /// Source rank.
        peer: u32,
        /// Chunk index within the vector.
        chunk: u32,
    },
    /// Combine the received copy of `chunk` into the local vector
    /// (the user-specified binary op; `+` in the evaluation).
    Reduce {
        /// Chunk index.
        chunk: u32,
    },
    /// Overwrite the local copy of `chunk` with the received (already fully
    /// reduced) copy — the allgather phase's commit.
    Replace {
        /// Chunk index.
        chunk: u32,
    },
}

/// A set of subtasks that may proceed once the previous round completed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Round(pub Vec<NbcOp>);

/// A complete collective schedule for one rank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Rank this schedule belongs to.
    pub rank: u32,
    /// Participating ranks.
    pub n_ranks: u32,
    /// How many chunks the vector is split into for this schedule (the
    /// `chunk` indices in ops range over `0..n_chunks`): `P` for the ring
    /// schedules, `1` for the binomial tree (whole-vector moves), the
    /// group count for the hierarchical schedule.
    pub n_chunks: u32,
    /// The rounds, in dependency order.
    pub rounds: Vec<Round>,
}

/// Element range `[offset, offset+len)` of chunk `c` when `total` elements
/// are split across `p` chunks (remainder spread over the leading chunks).
pub fn chunk_range(c: u32, total: u64, p: u32) -> (u64, u64) {
    let p64 = p as u64;
    let c64 = c as u64;
    let base = total / p64;
    let rem = total % p64;
    let len = base + u64::from(c64 < rem);
    let offset = c64 * base + c64.min(rem);
    (offset, len)
}

/// The ring Allreduce schedule for `rank` of `n_ranks`.
///
/// Reduce-scatter rounds `r = 0..P−1`: rank `i` sends chunk `(i − r) mod P`
/// to `(i+1) mod P` and receives+reduces chunk `(i − r − 1) mod P`.
/// Allgather rounds: rank `i` sends chunk `(i + 1 − r) mod P` and
/// receives+replaces chunk `(i − r) mod P`.
pub fn ring_allreduce(rank: u32, n_ranks: u32) -> Schedule {
    assert!(n_ranks >= 2, "allreduce needs at least 2 ranks");
    assert!(rank < n_ranks);
    let p = n_ranks;
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let md = |x: i64| ((x % p as i64 + p as i64) % p as i64) as u32;

    let mut rounds = Vec::with_capacity(2 * (p as usize - 1));
    for r in 0..p - 1 {
        let send_chunk = md(rank as i64 - r as i64);
        let recv_chunk = md(rank as i64 - r as i64 - 1);
        rounds.push(Round(vec![
            NbcOp::Send {
                peer: next,
                chunk: send_chunk,
            },
            NbcOp::Recv {
                peer: prev,
                chunk: recv_chunk,
            },
            NbcOp::Reduce { chunk: recv_chunk },
        ]));
    }
    for r in 0..p - 1 {
        let send_chunk = md(rank as i64 + 1 - r as i64);
        let recv_chunk = md(rank as i64 - r as i64);
        rounds.push(Round(vec![
            NbcOp::Send {
                peer: next,
                chunk: send_chunk,
            },
            NbcOp::Recv {
                peer: prev,
                chunk: recv_chunk,
            },
            NbcOp::Replace { chunk: recv_chunk },
        ]));
    }
    Schedule {
        rank,
        n_ranks,
        n_chunks: p,
        rounds,
    }
}

/// Rounds of a binomial tree over `m` leaves (0 when `m == 1`).
fn tree_rounds(m: u32) -> u32 {
    32 - (m - 1).leading_zeros().min(32)
}

/// The binomial-tree Allreduce schedule for `rank` of `n_ranks`: reduce
/// onto rank 0 in `⌈log₂P⌉` rounds, then the mirrored broadcast. The
/// whole vector moves as a single chunk (`n_chunks == 1`), so the tree is
/// latency-optimal (fewest rounds) but moves `P·N` bytes total. Works for
/// any `P ≥ 2`, power of two or not.
pub fn tree_allreduce(rank: u32, n_ranks: u32) -> Schedule {
    assert!(n_ranks >= 2, "allreduce needs at least 2 ranks");
    assert!(rank < n_ranks);
    let depth = tree_rounds(n_ranks);
    let mut rounds = Vec::with_capacity(2 * depth as usize);
    for r in 0..depth {
        rounds.push(Round(tree_round_ops(rank, n_ranks, r, false)));
    }
    for r in (0..depth).rev() {
        rounds.push(Round(tree_round_ops(rank, n_ranks, r, true)));
    }
    Schedule {
        rank,
        n_ranks,
        n_chunks: 1,
        rounds,
    }
}

/// Ops of binomial round `r` for `rank` of `n`: in the reduce direction
/// ranks with bit `r` set (and bits below clear) send the vector to their
/// parent `rank − 2^r`, which receives and reduces; `broadcast` mirrors
/// the edge (parent sends, child replaces).
#[allow(clippy::manual_is_multiple_of)] // `is_multiple_of` is past MSRV 1.75
fn tree_round_ops(rank: u32, n: u32, r: u32, broadcast: bool) -> Vec<NbcOp> {
    let span = 1u32 << (r + 1);
    let half = 1u32 << r;
    let mut ops = Vec::new();
    if rank % span == half {
        let parent = rank - half;
        if broadcast {
            ops.push(NbcOp::Recv {
                peer: parent,
                chunk: 0,
            });
            ops.push(NbcOp::Replace { chunk: 0 });
        } else {
            ops.push(NbcOp::Send {
                peer: parent,
                chunk: 0,
            });
        }
    } else if rank % span == 0 && rank + half < n {
        let child = rank + half;
        if broadcast {
            ops.push(NbcOp::Send {
                peer: child,
                chunk: 0,
            });
        } else {
            ops.push(NbcOp::Recv {
                peer: child,
                chunk: 0,
            });
            ops.push(NbcOp::Reduce { chunk: 0 });
        }
    }
    ops
}

/// The largest divisor of `n` no bigger than `⌊√n⌋` — the default group
/// size for [`hierarchical_allreduce`] (primes degrade to 1, i.e. a pure
/// leader ring).
#[allow(clippy::manual_is_multiple_of)] // `is_multiple_of` is past MSRV 1.75
pub fn auto_group_size(n: u32) -> u32 {
    let mut best = 1;
    let mut d = 1;
    while d * d <= n {
        if n % d == 0 {
            best = d;
        }
        d += 1;
    }
    best
}

/// The hierarchical (Rabenseifner-style) Allreduce for `rank` of
/// `n_ranks`, with `group_size` consecutive ranks per group (`n_ranks`
/// must divide evenly). Three phases under one global round numbering:
///
/// 1. `⌈log₂m⌉` rounds of binomial reduce inside each group onto its
///    leader (the group's first rank), moving the whole vector;
/// 2. `2(G−1)` rounds of ring Allreduce among the `G` leaders over
///    `n_chunks == G` chunks — the only cross-group traffic;
/// 3. the mirrored intra-group broadcast.
///
/// Non-leaders idle (empty rounds) through phase 2.
#[allow(clippy::manual_is_multiple_of)] // `is_multiple_of` is past MSRV 1.75
pub fn hierarchical_allreduce(rank: u32, n_ranks: u32, group_size: u32) -> Schedule {
    assert!(n_ranks >= 2, "allreduce needs at least 2 ranks");
    assert!(rank < n_ranks);
    assert!(group_size >= 1, "group_size must be at least 1");
    assert!(
        n_ranks % group_size == 0,
        "group_size {group_size} must divide n_ranks {n_ranks}"
    );
    let m = group_size;
    let groups = n_ranks / m;
    let local = rank % m;
    let leader = rank - local;
    let depth = tree_rounds(m);
    let g = rank / m;
    let md = |x: i64| ((x % groups as i64 + groups as i64) % groups as i64) as u32;

    let mut rounds = Vec::new();
    // Phase 1: intra-group binomial reduce onto the leader. The whole
    // vector moves, expressed as every chunk so the chunk math stays
    // uniform across phases.
    for r in 0..depth {
        let mut ops = Vec::new();
        for op in tree_round_ops(local, m, r, false) {
            for c in 0..groups {
                ops.push(retarget(op, leader, c));
            }
        }
        rounds.push(Round(ops));
    }
    // Phase 2: ring Allreduce among leaders over G chunks (empty for
    // non-leaders, absent entirely for a single group).
    if groups >= 2 {
        let next = md(g as i64 + 1) * m;
        let prev = md(g as i64 - 1) * m;
        for r in 0..groups - 1 {
            let mut ops = Vec::new();
            if local == 0 {
                let send_chunk = md(g as i64 - r as i64);
                let recv_chunk = md(g as i64 - r as i64 - 1);
                ops.push(NbcOp::Send {
                    peer: next,
                    chunk: send_chunk,
                });
                ops.push(NbcOp::Recv {
                    peer: prev,
                    chunk: recv_chunk,
                });
                ops.push(NbcOp::Reduce { chunk: recv_chunk });
            }
            rounds.push(Round(ops));
        }
        for r in 0..groups - 1 {
            let mut ops = Vec::new();
            if local == 0 {
                let send_chunk = md(g as i64 + 1 - r as i64);
                let recv_chunk = md(g as i64 - r as i64);
                ops.push(NbcOp::Send {
                    peer: next,
                    chunk: send_chunk,
                });
                ops.push(NbcOp::Recv {
                    peer: prev,
                    chunk: recv_chunk,
                });
                ops.push(NbcOp::Replace { chunk: recv_chunk });
            }
            rounds.push(Round(ops));
        }
    }
    // Phase 3: intra-group broadcast, the reduce phase mirrored.
    for r in (0..depth).rev() {
        let mut ops = Vec::new();
        for op in tree_round_ops(local, m, r, true) {
            for c in 0..groups {
                ops.push(retarget(op, leader, c));
            }
        }
        rounds.push(Round(ops));
    }
    Schedule {
        rank,
        n_ranks,
        n_chunks: groups,
        rounds,
    }
}

/// Rebase a local-rank op onto absolute ranks (`+ leader`) and chunk `c`.
fn retarget(op: NbcOp, leader: u32, c: u32) -> NbcOp {
    match op {
        NbcOp::Send { peer, .. } => NbcOp::Send {
            peer: peer + leader,
            chunk: c,
        },
        NbcOp::Recv { peer, .. } => NbcOp::Recv {
            peer: peer + leader,
            chunk: c,
        },
        NbcOp::Reduce { .. } => NbcOp::Reduce { chunk: c },
        NbcOp::Replace { .. } => NbcOp::Replace { chunk: c },
    }
}

/// The recursive halving-doubling Allreduce for `rank` of `n_ranks`
/// (`n_ranks` must be a power of two). Over `n_chunks == P` chunks:
///
/// * Reduce-scatter rounds `j = 0..log₂P`: exchange with the partner at
///   distance `P/2^(j+1)` (`rank XOR stride`). Each side sends the half
///   of its current segment the partner is responsible for and reduces
///   the received half, so segments halve every round; after the last
///   round rank `i` owns the fully reduced chunk `i`.
/// * Allgather rounds mirror the reduce-scatter in reverse: the same
///   partners at doubling distances, each side replacing the partner's
///   segment, so segments double back to the whole vector.
///
/// Every round is a symmetric pairwise exchange, and the largest
/// messages travel the largest distances — the opposite locality profile
/// from [`hierarchical_allreduce`], which keeps bulk traffic inside a
/// group.
pub fn rhd_allreduce(rank: u32, n_ranks: u32) -> Schedule {
    assert!(n_ranks >= 2, "allreduce needs at least 2 ranks");
    assert!(
        n_ranks.is_power_of_two(),
        "halving-doubling needs a power-of-two rank count, got {n_ranks}"
    );
    assert!(rank < n_ranks);
    let p = n_ranks;
    let k = p.trailing_zeros();
    let mut rounds = Vec::with_capacity(2 * k as usize);

    // Reduce-scatter: vector halving, distance halving. Track the chunk
    // segment `[lo, lo+sz)` this rank still owns; keep the half that
    // contains chunk `rank`, send the other half to the partner.
    let mut lo = 0u32;
    let mut sz = p;
    for j in 0..k {
        let stride = p >> (j + 1);
        let partner = rank ^ stride;
        let half = sz / 2;
        let (keep_lo, send_lo) = if rank & stride == 0 {
            (lo, lo + half)
        } else {
            (lo + half, lo)
        };
        let mut ops = Vec::new();
        for c in send_lo..send_lo + half {
            ops.push(NbcOp::Send {
                peer: partner,
                chunk: c,
            });
        }
        for c in keep_lo..keep_lo + half {
            ops.push(NbcOp::Recv {
                peer: partner,
                chunk: c,
            });
            ops.push(NbcOp::Reduce { chunk: c });
        }
        rounds.push(Round(ops));
        lo = keep_lo;
        sz = half;
    }

    // Allgather: the reduce-scatter mirrored — same partners, reverse
    // order, segments doubling from `[rank, rank+1)` back to the vector.
    for j in (0..k).rev() {
        let stride = p >> (j + 1);
        let partner = rank ^ stride;
        let partner_lo = if rank & stride == 0 { lo + sz } else { lo - sz };
        let mut ops = Vec::new();
        for c in lo..lo + sz {
            ops.push(NbcOp::Send {
                peer: partner,
                chunk: c,
            });
        }
        for c in partner_lo..partner_lo + sz {
            ops.push(NbcOp::Recv {
                peer: partner,
                chunk: c,
            });
            ops.push(NbcOp::Replace { chunk: c });
        }
        rounds.push(Round(ops));
        lo = lo.min(partner_lo);
        sz *= 2;
    }
    Schedule {
        rank,
        n_ranks,
        n_chunks: p,
        rounds,
    }
}

/// The ring AllGather for `rank` of `n_ranks`: rank `i` contributes chunk
/// `i`; in round `r` it sends chunk `(i − r) mod P` to its successor and
/// replaces chunk `(i − r − 1) mod P` from its predecessor. After `P−1`
/// rounds every rank holds every chunk.
pub fn ring_allgather(rank: u32, n_ranks: u32) -> Schedule {
    assert!(n_ranks >= 2, "allgather needs at least 2 ranks");
    assert!(rank < n_ranks);
    let p = n_ranks;
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let md = |x: i64| ((x % p as i64 + p as i64) % p as i64) as u32;

    let mut rounds = Vec::with_capacity(p as usize - 1);
    for r in 0..p - 1 {
        let send_chunk = md(rank as i64 - r as i64);
        let recv_chunk = md(rank as i64 - r as i64 - 1);
        rounds.push(Round(vec![
            NbcOp::Send {
                peer: next,
                chunk: send_chunk,
            },
            NbcOp::Recv {
                peer: prev,
                chunk: recv_chunk,
            },
            NbcOp::Replace { chunk: recv_chunk },
        ]));
    }
    Schedule {
        rank,
        n_ranks,
        n_chunks: p,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn chunk_ranges_partition_the_vector() {
        for (total, p) in [(100u64, 4u32), (7, 3), (8 * 1024 * 1024 / 4, 32), (5, 8)] {
            let mut covered = 0u64;
            let mut next_offset = 0u64;
            for c in 0..p {
                let (off, len) = chunk_range(c, total, p);
                assert_eq!(off, next_offset, "chunks contiguous");
                next_offset = off + len;
                covered += len;
            }
            assert_eq!(covered, total, "total={total} p={p}");
        }
    }

    #[test]
    fn schedule_has_2p_minus_2_rounds() {
        for p in [2u32, 3, 8, 32] {
            let s = ring_allreduce(0, p);
            assert_eq!(s.rounds.len(), 2 * (p as usize - 1));
        }
    }

    /// Symbolic replay of a lock-step schedule set: track, per rank and
    /// chunk, the set of ranks whose contribution is folded in. Rounds
    /// gather all sends first, then every recv must match exactly one
    /// in-flight message; Reduce unions the sender's set, Replace adopts
    /// it. Returns the final `state[rank][chunk]` contributor sets.
    fn replay(schedules: &[Schedule]) -> Vec<Vec<BTreeSet<u32>>> {
        let chunks = schedules[0].n_chunks;
        let n_rounds = schedules[0].rounds.len();
        for s in schedules {
            assert_eq!(s.rounds.len(), n_rounds, "rounds must be lock-step");
            assert_eq!(s.n_chunks, chunks, "chunk split must agree");
        }
        // state[rank][chunk] = contributor set
        let mut state: Vec<Vec<BTreeSet<u32>>> = (0..schedules.len() as u32)
            .map(|r| (0..chunks).map(|_| BTreeSet::from([r])).collect())
            .collect();
        for round in 0..n_rounds {
            let mut in_flight: Vec<(u32, u32, BTreeSet<u32>)> = Vec::new(); // (to, chunk, set)
            for s in schedules {
                for op in &s.rounds[round].0 {
                    if let NbcOp::Send { peer, chunk } = op {
                        in_flight.push((
                            *peer,
                            *chunk,
                            state[s.rank as usize][*chunk as usize].clone(),
                        ));
                    }
                }
            }
            for s in schedules {
                for op in &s.rounds[round].0 {
                    match op {
                        NbcOp::Recv { peer, chunk } => {
                            let matches: Vec<_> = in_flight
                                .iter()
                                .filter(|(to, c, _)| *to == s.rank && c == chunk)
                                .collect();
                            assert_eq!(
                                matches.len(),
                                1,
                                "round={round} rank={} chunk={chunk} peer={peer}",
                                s.rank
                            );
                        }
                        NbcOp::Reduce { chunk } => {
                            let (_, _, set) = in_flight
                                .iter()
                                .find(|(to, c, _)| *to == s.rank && c == chunk)
                                .unwrap()
                                .clone();
                            state[s.rank as usize][*chunk as usize].extend(set);
                        }
                        NbcOp::Replace { chunk } => {
                            let (_, _, set) = in_flight
                                .iter()
                                .find(|(to, c, _)| *to == s.rank && c == chunk)
                                .unwrap()
                                .clone();
                            state[s.rank as usize][*chunk as usize] = set;
                        }
                        NbcOp::Send { .. } => {}
                    }
                }
            }
        }
        state
    }

    /// Every rank ends up holding every chunk with contributions from
    /// every rank (the Allreduce postcondition).
    fn assert_full_reduction(schedules: &[Schedule], label: &str) {
        let p = schedules.len() as u32;
        let state = replay(schedules);
        let full: BTreeSet<u32> = (0..p).collect();
        for (r, chunks) in state.iter().enumerate() {
            for (c, set) in chunks.iter().enumerate() {
                assert_eq!(set, &full, "{label} p={p} rank={r} chunk={c} incomplete");
            }
        }
    }

    #[test]
    fn symbolic_replay_produces_full_reduction_everywhere() {
        for p in [2u32, 3, 4, 5, 8, 16] {
            let schedules: Vec<Schedule> = (0..p).map(|r| ring_allreduce(r, p)).collect();
            assert_full_reduction(&schedules, "ring");
        }
    }

    #[test]
    fn tree_allreduce_reduces_fully_in_logarithmic_rounds() {
        for p in [2u32, 3, 4, 5, 7, 8, 13, 16, 31] {
            let schedules: Vec<Schedule> = (0..p).map(|r| tree_allreduce(r, p)).collect();
            let depth = (p as f64).log2().ceil() as usize;
            assert_eq!(schedules[0].rounds.len(), 2 * depth, "p={p}");
            assert_eq!(schedules[0].n_chunks, 1);
            assert_full_reduction(&schedules, "tree");
        }
    }

    #[test]
    fn hierarchical_allreduce_reduces_fully_for_all_group_shapes() {
        for (p, m) in [
            (4u32, 2u32),
            (6, 2),
            (6, 3),
            (8, 2),
            (8, 4),
            (8, 8),
            (12, 3),
            (16, 4),
            (9, 3),
            (5, 1),
        ] {
            let schedules: Vec<Schedule> =
                (0..p).map(|r| hierarchical_allreduce(r, p, m)).collect();
            assert_full_reduction(&schedules, "hier");
            // Non-leaders idle through the leader-ring phase.
            let groups = p / m;
            let depth = if m == 1 {
                0
            } else {
                (m as f64).log2().ceil() as usize
            };
            let ring_rounds = if groups >= 2 {
                2 * (groups as usize - 1)
            } else {
                0
            };
            assert_eq!(
                schedules[0].rounds.len(),
                2 * depth + ring_rounds,
                "p={p} m={m}"
            );
            for s in &schedules {
                if s.rank % m != 0 {
                    for round in &s.rounds[depth..depth + ring_rounds] {
                        assert!(round.0.is_empty(), "non-leader active in ring phase");
                    }
                }
            }
        }
    }

    #[test]
    fn hierarchical_rejects_non_dividing_group_size() {
        let r = std::panic::catch_unwind(|| hierarchical_allreduce(0, 8, 3));
        assert!(r.is_err());
    }

    #[test]
    fn auto_group_size_picks_the_largest_divisor_below_sqrt() {
        assert_eq!(auto_group_size(8), 2);
        assert_eq!(auto_group_size(16), 4);
        assert_eq!(auto_group_size(36), 6);
        assert_eq!(auto_group_size(512), 16);
        assert_eq!(auto_group_size(13), 1); // prime: leader ring
        assert_eq!(auto_group_size(2), 1);
    }

    #[test]
    fn halving_doubling_reduces_fully_in_logarithmic_rounds() {
        for p in [2u32, 4, 8, 16, 32] {
            let schedules: Vec<Schedule> = (0..p).map(|r| rhd_allreduce(r, p)).collect();
            let k = p.trailing_zeros() as usize;
            assert_eq!(schedules[0].rounds.len(), 2 * k, "p={p}");
            assert_eq!(schedules[0].n_chunks, p);
            assert_full_reduction(&schedules, "rhd");
        }
    }

    #[test]
    fn halving_doubling_messages_halve_with_doubling_reach() {
        // Round j of the reduce-scatter moves P/2^(j+1) chunks between
        // partners P/2^(j+1) apart: the biggest messages travel farthest.
        let p = 16u32;
        for rank in 0..p {
            let s = rhd_allreduce(rank, p);
            for (j, round) in s.rounds[..4].iter().enumerate() {
                let stride = p >> (j + 1);
                let sends = round
                    .0
                    .iter()
                    .filter(|op| matches!(op, NbcOp::Send { .. }))
                    .count();
                assert_eq!(sends as u32, stride, "rank={rank} round={j}");
                for op in &round.0 {
                    if let NbcOp::Send { peer, .. } = op {
                        assert_eq!(*peer, rank ^ stride, "rank={rank} round={j}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn halving_doubling_rejects_non_power_of_two() {
        let _ = rhd_allreduce(0, 6);
    }

    #[test]
    fn allgather_distributes_every_chunk_to_every_rank() {
        for p in [2u32, 3, 4, 8, 16] {
            let schedules: Vec<Schedule> = (0..p).map(|r| ring_allgather(r, p)).collect();
            assert_eq!(schedules[0].rounds.len(), p as usize - 1);
            let state = replay(&schedules);
            // Chunk c everywhere holds exactly rank c's contribution.
            for (r, chunks) in state.iter().enumerate() {
                for c in 0..p {
                    assert_eq!(
                        chunks[c as usize],
                        BTreeSet::from([c]),
                        "p={p} rank={r} chunk={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn sends_go_to_ring_successor_only() {
        let p = 8;
        for r in 0..p {
            let s = ring_allreduce(r, p);
            for round in &s.rounds {
                for op in &round.0 {
                    match op {
                        NbcOp::Send { peer, .. } => assert_eq!(*peer, (r + 1) % p),
                        NbcOp::Recv { peer, .. } => assert_eq!(*peer, (r + p - 1) % p),
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 ranks")]
    fn single_rank_rejected() {
        let _ = ring_allreduce(0, 1);
    }
}
