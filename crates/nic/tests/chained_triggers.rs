//! Portals-4 counter chaining ([40] Underwood et al.): arrivals progress
//! the receiving NIC's trigger list. A message can relay around a ring of
//! NICs with **no CPU or GPU involvement after kickoff** — the mechanism
//! the paper cites as the foundation of offloaded collectives, and the
//! substrate GPU-TN extends with GPU-written triggers.

use gtn_fabric::{Fabric, FabricConfig};
use gtn_mem::{Addr, MemPool, NodeId};
use gtn_nic::nic::{Nic, NicCommand, NicEvent, NicOutput};
use gtn_nic::op::{NetOp, Notify, Tag};
use gtn_nic::NicConfig;
use gtn_sim::time::SimTime;
use gtn_sim::Engine;

struct Ring {
    nics: Vec<Nic>,
    mem: MemPool,
    fabric: Fabric,
    engine: Engine<(usize, NicEvent)>,
}

impl Ring {
    fn new(n: usize) -> Self {
        Ring {
            nics: (0..n)
                .map(|i| Nic::new(NodeId(i as u32), NicConfig::default()))
                .collect(),
            mem: MemPool::new(n),
            fabric: Fabric::new(n, FabricConfig::default()),
            engine: Engine::new(),
        }
    }

    fn run(&mut self) -> SimTime {
        let nics = &mut self.nics;
        let mem = &mut self.mem;
        let fabric = &mut self.fabric;
        self.engine.run(|eng, (node, ev)| {
            for out in nics[node].handle(eng.now(), ev, mem, fabric) {
                match out {
                    NicOutput::Local { at, ev } => eng.schedule_at(at, (node, ev)),
                    NicOutput::Remote { node, at, ev } => eng.schedule_at(at, (node.index(), ev)),
                }
            }
        });
        self.engine.now()
    }
}

/// A payload relays 0 → 1 → 2 → 3 purely via chained triggered puts.
#[test]
fn message_relays_around_the_ring_with_no_host() {
    let n = 4;
    let mut ring = Ring::new(n);
    let bufs: Vec<Addr> = (0..n as u32)
        .map(|i| Addr::base(NodeId(i), ring.mem.alloc(NodeId(i), 64, "buf")))
        .collect();
    let flags: Vec<Addr> = (0..n as u32)
        .map(|i| Addr::base(NodeId(i), ring.mem.alloc(NodeId(i), 8, "flag")))
        .collect();
    ring.mem.write(bufs[0], &[0xAA; 64]);

    // Each hop k (on node k) is a triggered put of node k's buffer to node
    // k+1, whose arrival-notify chains the next hop's trigger.
    for k in 0..n - 1 {
        let next = k + 1;
        let notify = if next < n - 1 {
            // Chain the next hop on the receiving node.
            Notify::count_then_trigger(flags[next], Tag(100 + next as u64))
        } else {
            Notify::count(flags[next])
        };
        ring.engine.schedule_at(
            SimTime::ZERO,
            (
                k,
                NicEvent::Doorbell(NicCommand::TriggeredPut {
                    tag: Tag(100 + k as u64),
                    threshold: 1,
                    op: NetOp::Put {
                        src: bufs[k],
                        len: 64,
                        target: NodeId(next as u32),
                        dst: bufs[next],
                        notify: Some(notify),
                        completion: None,
                    },
                }),
            ),
        );
    }
    // Kick off hop 0 (in a full system this would be the GPU's trigger
    // store; here a raw trigger write).
    ring.engine
        .schedule_at(SimTime::from_us(1), (0, NicEvent::TriggerWrite(Tag(100))));

    let end = ring.run();
    for i in 1..n as u32 {
        assert_eq!(
            ring.mem.read(bufs[i as usize], 64),
            &[0xAA; 64],
            "node {i} missing payload"
        );
        assert_eq!(ring.mem.read_u64(flags[i as usize]), 1);
    }
    // Intermediate NICs each recorded one chained trigger.
    assert_eq!(ring.nics[1].stats().counter("chained_triggers"), 1);
    assert_eq!(ring.nics[2].stats().counter("chained_triggers"), 1);
    assert_eq!(
        ring.nics[3].stats().counter("chained_triggers"),
        0,
        "ring end"
    );
    // Three hops of ~0.9 us each: well under 5 us total.
    assert!(end < SimTime::from_us(6), "{end}");
}

/// Chaining composes with thresholds: a node forwards only after arrivals
/// from BOTH of its feeders (a reduce-style join).
#[test]
fn chained_join_waits_for_all_feeders() {
    let mut ring = Ring::new(4);
    let bufs: Vec<Addr> = (0..4u32)
        .map(|i| Addr::base(NodeId(i), ring.mem.alloc(NodeId(i), 64, "buf")))
        .collect();
    let flag3 = Addr::base(NodeId(3), ring.mem.alloc(NodeId(3), 8, "flag3"));
    let flag2 = Addr::base(NodeId(2), ring.mem.alloc(NodeId(2), 8, "flag2"));
    ring.mem.write(bufs[0], &[1; 64]);
    ring.mem.write(bufs[1], &[2; 64]);

    // Node 2 forwards to node 3 only once BOTH node 0 and node 1 have
    // delivered (threshold 2, fed by chained triggers).
    ring.engine.schedule_at(
        SimTime::ZERO,
        (
            2,
            NicEvent::Doorbell(NicCommand::TriggeredPut {
                tag: Tag(9),
                threshold: 2,
                op: NetOp::Put {
                    src: bufs[2],
                    len: 64,
                    target: NodeId(3),
                    dst: bufs[3],
                    notify: Some(Notify::count(flag3)),
                    completion: None,
                },
            }),
        ),
    );
    // Feeders: direct puts into node 2, chaining Tag(9) there.
    for feeder in 0..2usize {
        ring.engine.schedule_at(
            SimTime::from_ns(500 + feeder as u64 * 2_000), // staggered
            (
                feeder,
                NicEvent::Doorbell(NicCommand::Put(NetOp::Put {
                    src: bufs[feeder],
                    len: 64,
                    target: NodeId(2),
                    dst: bufs[2],
                    notify: Some(Notify::count_then_trigger(flag2, Tag(9))),
                    completion: None,
                })),
            ),
        );
    }
    ring.run();
    assert_eq!(ring.mem.read_u64(flag2), 2, "both feeders arrived");
    assert_eq!(ring.mem.read_u64(flag3), 1, "join forwarded once");
    // The second feeder (node 1) wrote last: its payload is what forwarded.
    assert_eq!(ring.mem.read(bufs[3], 64), &[2; 64]);
    assert_eq!(ring.nics[2].stats().counter("chained_triggers"), 2);
}
