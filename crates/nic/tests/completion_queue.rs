//! End-to-end completion-queue test: a NIC with an attached CQ reports
//! send and receive completions into the memory ring, and a consumer
//! polling the head counter observes them in order — the workflow §4.2.4's
//! flag mechanism is designed to avoid.

use gtn_fabric::{Fabric, FabricConfig};
use gtn_mem::{Addr, MemPool, NodeId};
use gtn_nic::cq::{CqDesc, CqKind};
use gtn_nic::nic::{Nic, NicCommand, NicEvent, NicOutput};
use gtn_nic::op::NetOp;
use gtn_nic::NicConfig;
use gtn_sim::time::SimTime;
use gtn_sim::Engine;

#[test]
fn cq_reports_send_and_recv_completions() {
    let mut mem = MemPool::new(2);
    let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 128, "src"));
    let dst = Addr::base(NodeId(1), mem.alloc(NodeId(1), 128, "dst"));
    let send_cq = CqDesc::alloc(&mut mem, NodeId(0), 16);
    let recv_cq = CqDesc::alloc(&mut mem, NodeId(1), 16);
    mem.write(src, &[5; 128]);

    let mut fabric = Fabric::new(2, FabricConfig::default());
    let mut nic0 = Nic::new(NodeId(0), NicConfig::default());
    let mut nic1 = Nic::new(NodeId(1), NicConfig::default());
    nic0.attach_cq(send_cq);
    nic1.attach_cq(recv_cq);

    let mut engine: Engine<(usize, NicEvent)> = Engine::new();
    for i in 0..3u64 {
        engine.schedule_at(
            SimTime::from_ns(i * 10),
            (
                0,
                NicEvent::Doorbell(NicCommand::Put(NetOp::Put {
                    src,
                    len: 128,
                    target: NodeId(1),
                    dst,
                    notify: None,
                    completion: None,
                })),
            ),
        );
    }
    engine.run(|eng, (node, ev)| {
        let nic = if node == 0 { &mut nic0 } else { &mut nic1 };
        for out in nic.handle(eng.now(), ev, &mut mem, &mut fabric) {
            match out {
                NicOutput::Local { at, ev } => eng.schedule_at(at, (node, ev)),
                NicOutput::Remote { node, at, ev } => eng.schedule_at(at, (node.index(), ev)),
            }
        }
    });

    // Sender CQ: three send completions, timestamps strictly increasing
    // (serial DMA engine).
    assert_eq!(send_cq.head(&mem), 3);
    let sends = send_cq.drain_from(&mem, 0);
    assert!(sends.iter().all(|e| e.kind == CqKind::SendComplete));
    assert!(sends.iter().all(|e| e.bytes == 128));
    assert!(sends.windows(2).all(|w| w[1].at > w[0].at));

    // Receiver CQ: three receive completions, each after the matching send.
    assert_eq!(recv_cq.head(&mem), 3);
    let recvs = recv_cq.drain_from(&mem, 0);
    assert!(recvs.iter().all(|e| e.kind == CqKind::RecvComplete));
    for (s, r) in sends.iter().zip(&recvs) {
        assert!(r.at > s.at, "recv {:?} precedes send {:?}", r.at, s.at);
    }
    assert_eq!(nic0.stats().counter("cq_entries"), 3);
    assert_eq!(nic1.stats().counter("cq_entries"), 3);
}
