//! Property tests for the §3.1/§3.2 trigger semantics: under **any**
//! interleaving of CPU posts and GPU trigger writes, each registered
//! operation fires exactly once, exactly when its counter first reaches the
//! threshold — the core correctness claim of the GPU-TN NIC extension.

use gtn_mem::{Addr, NodeId, RegionId};
use gtn_nic::lookup::LookupKind;
use gtn_nic::op::{NetOp, Tag};
use gtn_nic::trigger::TriggerList;
use proptest::prelude::*;

fn dummy_put() -> NetOp {
    NetOp::Put {
        src: Addr::base(NodeId(0), RegionId(0)),
        len: 8,
        target: NodeId(1),
        dst: Addr::base(NodeId(1), RegionId(0)),
        notify: None,
        completion: None,
    }
}

/// One step of an interleaving.
#[derive(Debug, Clone)]
enum Step {
    /// CPU posts (tag_idx, threshold).
    Post(usize, u64),
    /// GPU writes tag_idx to the trigger address.
    Trigger(usize),
}

fn steps(n_tags: usize) -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        (0..n_tags, 1u64..6).prop_map(|(t, th)| Step::Post(t, th)),
        (0..n_tags).prop_map(Step::Trigger),
    ];
    prop::collection::vec(step, 1..120)
}

proptest! {
    /// Replaying any interleaving against a reference model: an op fires
    /// exactly once, at the first instant (post or trigger) where an armed
    /// entry's counter >= threshold.
    #[test]
    fn fires_exactly_once_at_threshold(script in steps(6)) {
        for kind in [LookupKind::LinearList, LookupKind::HashTable] {
            let mut list = TriggerList::new(kind);
            // Reference: per-tag (counter, threshold if armed, fired count).
            let mut counter = [0u64; 6];
            let mut armed: Vec<Option<u64>> = vec![None; 6];
            let mut fired = [0u32; 6];

            for step in &script {
                match *step {
                    Step::Post(t, th) => {
                        let res = list.register(Tag(t as u64), dummy_put(), th);
                        if armed[t].is_some() {
                            prop_assert!(res.is_err(), "duplicate armed tag must be rejected");
                            continue;
                        }
                        armed[t] = Some(th);
                        let r = res.unwrap();
                        if counter[t] >= th {
                            prop_assert!(r.is_some(), "late post over met counter fires");
                            prop_assert_eq!(r.unwrap().counter, counter[t]);
                            fired[t] += 1;
                            counter[t] = 0;
                            armed[t] = None;
                        } else {
                            prop_assert!(r.is_none());
                        }
                    }
                    Step::Trigger(t) => {
                        let r = list.trigger(Tag(t as u64)).unwrap();
                        counter[t] += 1;
                        match armed[t] {
                            Some(th) if counter[t] >= th => {
                                prop_assert!(r.is_some(), "threshold met must fire");
                                prop_assert_eq!(r.unwrap().counter, counter[t]);
                                fired[t] += 1;
                                counter[t] = 0;
                                armed[t] = None;
                            }
                            _ => prop_assert!(r.is_none(), "must not fire early"),
                        }
                    }
                }
            }
            prop_assert_eq!(list.fired_total(), fired.iter().map(|&f| f as u64).sum::<u64>());
        }
    }

    /// The lookup implementation never changes *functional* outcomes, only
    /// cost/capacity: linear and hash agree on every script.
    #[test]
    fn lookup_kinds_agree_functionally(script in steps(4)) {
        let run = |kind: LookupKind| {
            let mut list = TriggerList::new(kind);
            let mut log = Vec::new();
            for step in &script {
                let r = match *step {
                    Step::Post(t, th) => list
                        .register(Tag(t as u64), dummy_put(), th)
                        .map(|o| o.map(|f| (f.tag, f.counter)))
                        .map_err(|_| ()),
                    Step::Trigger(t) => list
                        .trigger(Tag(t as u64))
                        .map(|o| o.map(|f| (f.tag, f.counter)))
                        .map_err(|_| ()),
                };
                log.push(r);
            }
            (log, list.fired_total(), list.active())
        };
        prop_assert_eq!(run(LookupKind::LinearList), run(LookupKind::HashTable));
    }

    /// With a big-enough associative lookup, capacity never bites and the
    /// behaviour matches the unbounded kinds.
    #[test]
    fn associative_with_headroom_matches(script in steps(4)) {
        let run = |kind: LookupKind| {
            let mut list = TriggerList::new(kind);
            let mut log = Vec::new();
            for step in &script {
                let r = match *step {
                    Step::Post(t, th) => list
                        .register(Tag(t as u64), dummy_put(), th)
                        .map(|o| o.is_some())
                        .map_err(|_| ()),
                    Step::Trigger(t) => {
                        list.trigger(Tag(t as u64)).map(|o| o.is_some()).map_err(|_| ())
                    }
                };
                log.push(r);
            }
            log
        };
        prop_assert_eq!(
            run(LookupKind::Associative { ways: 16 }),
            run(LookupKind::HashTable)
        );
    }

    /// A CAM far too small for the script still agrees *functionally* with
    /// the unbounded hash lookup on every step — spilling to the host
    /// overflow table and promoting back as entries retire must preserve
    /// exact tag-match semantics (early triggers spill counter-only
    /// entries, late posts land on spilled counters, fire order and
    /// counters are identical). Only cost differs, and that is not
    /// modelled here.
    #[test]
    fn spilled_cam_matches_unbounded_reference(script in steps(8), ways in 1u32..4) {
        let run = |kind: LookupKind| {
            let mut list = TriggerList::new(kind);
            let mut log = Vec::new();
            let mut max_active = 0;
            for step in &script {
                let r = match *step {
                    Step::Post(t, th) => list
                        .register(Tag(t as u64), dummy_put(), th)
                        .map(|o| o.map(|f| (f.tag, f.counter)))
                        .map_err(|_| ()),
                    Step::Trigger(t) => list
                        .trigger(Tag(t as u64))
                        .map(|o| o.map(|f| (f.tag, f.counter)))
                        .map_err(|_| ()),
                };
                max_active = max_active.max(list.active());
                log.push(r);
            }
            (log, list.fired_total(), list.pending_entries(), max_active)
        };
        let bounded = run(LookupKind::Associative { ways });
        let reference = run(LookupKind::HashTable);
        prop_assert_eq!(&bounded, &reference);
        // And whenever the script exceeded the CAM, the overflow table
        // (not an error) is what absorbed the pressure.
        let mut list = TriggerList::new(LookupKind::Associative { ways });
        for step in &script {
            let _ = match *step {
                Step::Post(t, th) => list.register(Tag(t as u64), dummy_put(), th).map(|_| ()),
                Step::Trigger(t) => list.trigger(Tag(t as u64)).map(|_| ()),
            };
        }
        if bounded.3 > ways as usize {
            prop_assert!(list.spills() > 0, "pressure without spills");
        }
        prop_assert_eq!(list.rejections().0, 0, "no capacity rejection may surface");
    }
}
