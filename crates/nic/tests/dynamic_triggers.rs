//! Tests for the §3.4 dynamic-communication extension at the trigger-list
//! and NIC level: GPU-supplied field overrides patch the CPU's template
//! operation at fire time, compose with thresholds, and work through the
//! relaxed-sync path.

use gtn_fabric::{Fabric, FabricConfig};
use gtn_mem::{Addr, MemPool, NodeId, RegionId};
use gtn_nic::dynamic::DynFields;
use gtn_nic::lookup::LookupKind;
use gtn_nic::nic::{Nic, NicCommand, NicEvent, NicOutput};
use gtn_nic::op::{NetOp, Notify, Tag};
use gtn_nic::trigger::TriggerList;
use gtn_nic::NicConfig;
use gtn_sim::time::SimTime;
use gtn_sim::Engine;

fn template(target: NodeId) -> NetOp {
    NetOp::Put {
        src: Addr::base(NodeId(0), RegionId(0)),
        len: 64,
        target,
        dst: Addr::base(target, RegionId(0)),
        notify: None,
        completion: None,
    }
}

#[test]
fn dynamic_write_patches_target_at_fire() {
    let mut list = TriggerList::new(LookupKind::HashTable);
    list.register(Tag(1), template(NodeId(1)), 1).unwrap();
    let fired = list
        .trigger_dyn(
            Tag(1),
            DynFields {
                target: Some(NodeId(3)),
                len: Some(16),
                ..DynFields::NONE
            },
        )
        .unwrap()
        .expect("fires");
    assert_eq!(fired.op.target(), NodeId(3));
    assert_eq!(fired.op.len(), 16);
}

#[test]
fn static_write_leaves_template_untouched() {
    let mut list = TriggerList::new(LookupKind::HashTable);
    list.register(Tag(1), template(NodeId(1)), 1).unwrap();
    let fired = list.trigger(Tag(1)).unwrap().expect("fires");
    assert_eq!(fired.op.target(), NodeId(1));
    assert_eq!(fired.op.len(), 64);
}

#[test]
fn threshold_merges_descriptors_last_write_wins() {
    let mut list = TriggerList::new(LookupKind::HashTable);
    list.register(Tag(7), template(NodeId(1)), 3).unwrap();
    list.trigger_dyn(
        Tag(7),
        DynFields {
            target: Some(NodeId(2)),
            ..DynFields::NONE
        },
    )
    .unwrap();
    list.trigger_dyn(
        Tag(7),
        DynFields {
            len: Some(8),
            ..DynFields::NONE
        },
    )
    .unwrap();
    let fired = list
        .trigger_dyn(
            Tag(7),
            DynFields {
                target: Some(NodeId(4)),
                ..DynFields::NONE
            },
        )
        .unwrap()
        .expect("third write fires");
    assert_eq!(fired.op.target(), NodeId(4), "last target wins");
    assert_eq!(fired.op.len(), 8, "len from the middle write survives");
}

#[test]
fn relaxed_sync_preserves_early_dynamic_fields() {
    // GPU triggers dynamically before the CPU post (§3.2 + §3.4 combined).
    let mut list = TriggerList::new(LookupKind::HashTable);
    list.trigger_dyn(
        Tag(9),
        DynFields {
            target: Some(NodeId(5)),
            ..DynFields::NONE
        },
    )
    .unwrap();
    let fired = list
        .register(Tag(9), template(NodeId(1)), 1)
        .unwrap()
        .expect("fires at post");
    assert_eq!(fired.op.target(), NodeId(5), "early descriptor applied");
}

/// End-to-end through the NIC state machine: a dynamic write steers the
/// payload to a runtime-chosen node.
#[test]
fn nic_delivers_to_dynamic_target() {
    let n = 4;
    let mut mem = MemPool::new(n);
    let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 64, "src"));
    let mut dsts = Vec::new();
    let mut flags = Vec::new();
    for node in 1..n as u32 {
        dsts.push(Addr::base(NodeId(node), mem.alloc(NodeId(node), 64, "dst")));
        flags.push(Addr::base(NodeId(node), mem.alloc(NodeId(node), 8, "flag")));
    }
    mem.write(src, &[0x7E; 64]);
    let mut fabric = Fabric::new(n, FabricConfig::default());
    let mut nics: Vec<Nic> = (0..n as u32)
        .map(|i| {
            Nic::new(
                NodeId(i),
                NicConfig {
                    lookup: LookupKind::HashTable,
                    ..NicConfig::default()
                },
            )
        })
        .collect();
    let mut engine: Engine<(usize, NicEvent)> = Engine::new();

    // CPU template points at node 1; the "GPU" overrides to node 3.
    engine.schedule_at(
        SimTime::ZERO,
        (
            0,
            NicEvent::Doorbell(NicCommand::TriggeredPut {
                tag: Tag(0),
                threshold: 1,
                op: NetOp::Put {
                    src,
                    len: 64,
                    target: NodeId(1),
                    dst: dsts[0],
                    notify: Some(Notify {
                        flag: flags[0],
                        add: 1,
                        chain: None,
                    }),
                    completion: None,
                },
            }),
        ),
    );
    engine.schedule_at(
        SimTime::from_us(1),
        (
            0,
            NicEvent::TriggerWriteDyn(
                Tag(0),
                DynFields {
                    target: Some(NodeId(3)),
                    dst: Some(dsts[2]),
                    ..DynFields::NONE
                },
            ),
        ),
    );
    engine.run(|eng, (node, ev)| {
        for out in nics[node].handle(eng.now(), ev, &mut mem, &mut fabric) {
            match out {
                NicOutput::Local { at, ev } => eng.schedule_at(at, (node, ev)),
                NicOutput::Remote { node, at, ev } => eng.schedule_at(at, (node.index(), ev)),
            }
        }
    });
    assert_eq!(mem.read(dsts[2], 64), &[0x7E; 64], "payload at node 3");
    assert_eq!(mem.read(dsts[0], 64), &[0u8; 64], "node 1 untouched");
    assert_eq!(nics[0].stats().counter("trigger_writes_dyn"), 1);
    assert_eq!(nics[3].stats().counter("rx_messages"), 1);
    assert_eq!(nics[1].stats().counter("rx_messages"), 0);
}

#[test]
fn dynamic_match_costs_more_than_static() {
    // The FIFO drain charges the descriptor-parse surcharge.
    let cfg = NicConfig::default();
    let mut nic = Nic::new(NodeId(0), cfg.clone());
    let mut mem = MemPool::new(2);
    let mut fabric = Fabric::new(2, FabricConfig::default());
    // One static and one dynamic write; compare FifoDrain schedule times.
    let outs = nic.handle(
        SimTime::ZERO,
        NicEvent::TriggerWrite(Tag(1)),
        &mut mem,
        &mut fabric,
    );
    let static_at = match &outs[0] {
        NicOutput::Local { at, .. } => *at,
        other => panic!("{other:?}"),
    };
    let mut nic2 = Nic::new(NodeId(0), cfg);
    let outs = nic2.handle(
        SimTime::ZERO,
        NicEvent::TriggerWriteDyn(
            Tag(1),
            DynFields {
                target: Some(NodeId(1)),
                ..DynFields::NONE
            },
        ),
        &mut mem,
        &mut fabric,
    );
    let dyn_at = match &outs[0] {
        NicOutput::Local { at, .. } => *at,
        other => panic!("{other:?}"),
    };
    assert!(dyn_at > static_at, "dyn {dyn_at} vs static {static_at}");
}
