//! Completion queues — the conventional notification mechanism GPU-TN's
//! lightweight flags replace.
//!
//! §4.2.4: GPU threads "can query this location to determine completion
//! status of individual network operations **without the complexity of
//! monitoring a network completion queue**". For that claim to be testable
//! the completion queue has to exist, so here it is: a memory-resident
//! ring the NIC writes 32-byte entries into (send-complete on DMA done,
//! receive-complete on payload commit) plus a head counter, exactly like a
//! Verbs/Portals CQ. Consumers poll the counter with ordinary memory polls
//! and then decode entries — paying the decode and ring-management costs
//! the paper's flag mechanism avoids.

use gtn_mem::{Addr, MemPool};
use gtn_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Entry kind discriminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CqKind {
    /// A local put's send buffer was fully read (safe to reuse).
    SendComplete = 1,
    /// A message's payload was committed to local memory.
    RecvComplete = 2,
    /// An operation failed permanently — the reliability layer exhausted
    /// its retry budget. `tag` carries the sequence number of the
    /// abandoned message. Without this entry a lost message would be a
    /// silent hang; with it, pollers can surface the failure.
    Error = 3,
}

/// One decoded completion entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CqEntry {
    /// What completed.
    pub kind: CqKind,
    /// Trigger tag of the operation, if it was triggered (else 0).
    pub tag: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Completion timestamp.
    pub at: SimTime,
}

/// Size of one encoded entry.
pub const CQ_ENTRY_BYTES: u64 = 32;

/// A memory-resident completion queue descriptor.
///
/// Layout: `counter` is a u64 the NIC fetch-adds per entry; `ring` holds
/// `capacity` fixed-size entries, written at slot `seq % capacity`.
/// Consumers poll `counter`, then decode `entry(seq)` for each new `seq`.
/// If the consumer falls more than `capacity` behind, old entries are
/// overwritten — the classic CQ overrun, surfaced by sequence checking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CqDesc {
    /// Head counter address (u64).
    pub counter: Addr,
    /// Ring base address (`capacity * CQ_ENTRY_BYTES` bytes).
    pub ring: Addr,
    /// Ring capacity in entries.
    pub capacity: u64,
}

impl CqDesc {
    /// Allocate a CQ of `capacity` entries on `node` and return its
    /// descriptor.
    pub fn alloc(mem: &mut MemPool, node: gtn_mem::NodeId, capacity: u64) -> CqDesc {
        assert!(capacity > 0, "CQ needs capacity");
        let counter = Addr::base(node, mem.alloc(node, 8, "cq.counter"));
        let ring = Addr::base(node, mem.alloc(node, capacity * CQ_ENTRY_BYTES, "cq.ring"));
        CqDesc {
            counter,
            ring,
            capacity,
        }
    }

    /// NIC side: append one entry and bump the counter. Returns the
    /// sequence number of the new entry.
    pub fn push(&self, mem: &mut MemPool, kind: CqKind, tag: u64, bytes: u64, at: SimTime) -> u64 {
        let seq = mem.read_u64(self.counter);
        let slot = self.ring.offset_by((seq % self.capacity) * CQ_ENTRY_BYTES);
        mem.write_u64(slot, kind as u64);
        mem.write_u64(slot.offset_by(8), tag);
        mem.write_u64(slot.offset_by(16), bytes);
        mem.write_u64(slot.offset_by(24), at.as_ps());
        mem.write_u64(self.counter, seq + 1);
        seq
    }

    /// Consumer side: number of entries ever pushed.
    pub fn head(&self, mem: &MemPool) -> u64 {
        mem.read_u64(self.counter)
    }

    /// Consumer side: decode entry `seq`.
    ///
    /// # Panics
    /// Panics if `seq` has been overwritten (consumer fell more than
    /// `capacity` behind) or not yet written.
    pub fn entry(&self, mem: &MemPool, seq: u64) -> CqEntry {
        let head = self.head(mem);
        assert!(seq < head, "entry {seq} not yet written (head {head})");
        assert!(
            head - seq <= self.capacity,
            "entry {seq} overwritten (head {head}, capacity {})",
            self.capacity
        );
        let slot = self.ring.offset_by((seq % self.capacity) * CQ_ENTRY_BYTES);
        let kind = match mem.read_u64(slot) {
            1 => CqKind::SendComplete,
            2 => CqKind::RecvComplete,
            3 => CqKind::Error,
            other => panic!("corrupt CQ entry kind {other}"),
        };
        CqEntry {
            kind,
            tag: mem.read_u64(slot.offset_by(8)),
            bytes: mem.read_u64(slot.offset_by(16)),
            at: SimTime::from_ps(mem.read_u64(slot.offset_by(24))),
        }
    }

    /// Consumer side: drain all entries in `[from, head)`.
    pub fn drain_from(&self, mem: &MemPool, from: u64) -> Vec<CqEntry> {
        (from..self.head(mem)).map(|s| self.entry(mem, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_mem::NodeId;

    fn setup(capacity: u64) -> (MemPool, CqDesc) {
        let mut mem = MemPool::new(1);
        let cq = CqDesc::alloc(&mut mem, NodeId(0), capacity);
        (mem, cq)
    }

    #[test]
    fn push_and_decode_roundtrip() {
        let (mut mem, cq) = setup(8);
        assert_eq!(cq.head(&mem), 0);
        let seq = cq.push(
            &mut mem,
            CqKind::SendComplete,
            42,
            4096,
            SimTime::from_us(3),
        );
        assert_eq!(seq, 0);
        assert_eq!(cq.head(&mem), 1);
        let e = cq.entry(&mem, 0);
        assert_eq!(e.kind, CqKind::SendComplete);
        assert_eq!(e.tag, 42);
        assert_eq!(e.bytes, 4096);
        assert_eq!(e.at, SimTime::from_us(3));
    }

    #[test]
    fn ring_wraps_and_drain_reads_in_order() {
        let (mut mem, cq) = setup(4);
        for i in 0..6u64 {
            cq.push(&mut mem, CqKind::RecvComplete, i, 64, SimTime::from_ns(i));
        }
        // Entries 2..6 are still live (capacity 4).
        let drained = cq.drain_from(&mem, 2);
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[0].tag, 2);
        assert_eq!(drained[3].tag, 5);
    }

    #[test]
    #[should_panic(expected = "overwritten")]
    fn overrun_is_detected() {
        let (mut mem, cq) = setup(2);
        for i in 0..5u64 {
            cq.push(&mut mem, CqKind::SendComplete, i, 8, SimTime::ZERO);
        }
        let _ = cq.entry(&mem, 0);
    }

    #[test]
    #[should_panic(expected = "not yet written")]
    fn reading_ahead_is_detected() {
        let (mem, cq) = setup(2);
        let _ = cq.entry(&mem, 0);
    }
}
