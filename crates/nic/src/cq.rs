//! Completion queues — the conventional notification mechanism GPU-TN's
//! lightweight flags replace.
//!
//! §4.2.4: GPU threads "can query this location to determine completion
//! status of individual network operations **without the complexity of
//! monitoring a network completion queue**". For that claim to be testable
//! the completion queue has to exist, so here it is: a memory-resident
//! ring the NIC writes 32-byte entries into (send-complete on DMA done,
//! receive-complete on payload commit) plus a head counter, exactly like a
//! Verbs/Portals CQ. Consumers poll the counter with ordinary memory polls
//! and then decode entries — paying the decode and ring-management costs
//! the paper's flag mechanism avoids.
//!
//! Two disciplines are supported:
//!
//! - **Unbounded overwrite** (the seed model, [`CqDesc::push`]): the NIC
//!   always appends; a consumer that falls more than `capacity` behind
//!   loses entries. Loss is *detected, not fatal*: [`CqDesc::read`]
//!   returns a structured [`CqError`], and [`CqDesc::drain_from`] reports
//!   the gap as a synthetic [`CqKind::Overflow`] entry.
//! - **Bounded with backpressure** ([`CqDesc::try_push`] + the consumer
//!   cursor): the NIC refuses to overwrite and instead parks the commit —
//!   the `cq_stall` stage of the resource-pressure model.

use gtn_mem::{Addr, MemPool};
use gtn_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Entry kind discriminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CqKind {
    /// A local put's send buffer was fully read (safe to reuse).
    SendComplete = 1,
    /// A message's payload was committed to local memory.
    RecvComplete = 2,
    /// An operation failed permanently — the reliability layer exhausted
    /// its retry budget. `tag` carries the sequence number of the
    /// abandoned message. Without this entry a lost message would be a
    /// silent hang; with it, pollers can surface the failure.
    Error = 3,
    /// Synthetic marker for a CQ overrun: the consumer lagged more than
    /// `capacity` behind an overwriting producer and `tag` entries were
    /// lost. Emitted by [`CqDesc::drain_from`], never stored in the ring.
    Overflow = 4,
}

/// One decoded completion entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CqEntry {
    /// What completed.
    pub kind: CqKind,
    /// Trigger tag of the operation, if it was triggered (else 0).
    pub tag: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Completion timestamp.
    pub at: SimTime,
}

/// Structured consumer-side decode failures. A lagging or over-eager
/// consumer gets one of these — never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqError {
    /// `seq` has not been pushed yet.
    NotYetWritten {
        /// The requested sequence number.
        seq: u64,
        /// Current head (entries ever pushed).
        head: u64,
    },
    /// `seq` was overwritten: the consumer fell more than `capacity`
    /// behind an overwriting producer.
    Overwritten {
        /// The requested sequence number.
        seq: u64,
        /// Current head.
        head: u64,
        /// Ring capacity.
        capacity: u64,
    },
    /// The slot holds an unknown kind discriminant (memory corruption).
    CorruptKind {
        /// The requested sequence number.
        seq: u64,
        /// The raw discriminant found.
        raw: u64,
    },
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::NotYetWritten { seq, head } => {
                write!(f, "CQ entry {seq} not yet written (head {head})")
            }
            CqError::Overwritten {
                seq,
                head,
                capacity,
            } => write!(
                f,
                "CQ entry {seq} overwritten (head {head}, capacity {capacity})"
            ),
            CqError::CorruptKind { seq, raw } => {
                write!(f, "CQ entry {seq} has corrupt kind {raw}")
            }
        }
    }
}

impl std::error::Error for CqError {}

/// Size of one encoded entry.
pub const CQ_ENTRY_BYTES: u64 = 32;

/// A memory-resident completion queue descriptor.
///
/// Layout: `counter` is a u64 the NIC fetch-adds per entry; `ring` holds
/// `capacity` fixed-size entries, written at slot `seq % capacity`;
/// `tail` is the consumer cursor (entries consumed so far), advanced via
/// [`CqDesc::consume_to`] and honoured by the bounded
/// [`CqDesc::try_push`] path. The legacy [`CqDesc::push`] ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CqDesc {
    /// Head counter address (u64).
    pub counter: Addr,
    /// Ring base address (`capacity * CQ_ENTRY_BYTES` bytes).
    pub ring: Addr,
    /// Ring capacity in entries.
    pub capacity: u64,
    /// Consumer cursor address (u64): entries consumed so far.
    pub tail: Addr,
}

impl CqDesc {
    /// Allocate a CQ of `capacity` entries on `node` and return its
    /// descriptor.
    pub fn alloc(mem: &mut MemPool, node: gtn_mem::NodeId, capacity: u64) -> CqDesc {
        assert!(capacity > 0, "CQ needs capacity");
        let counter = Addr::base(node, mem.alloc(node, 8, "cq.counter"));
        let ring = Addr::base(node, mem.alloc(node, capacity * CQ_ENTRY_BYTES, "cq.ring"));
        let tail = Addr::base(node, mem.alloc(node, 8, "cq.tail"));
        CqDesc {
            counter,
            ring,
            capacity,
            tail,
        }
    }

    /// NIC side: append one entry and bump the counter, overwriting the
    /// oldest slot when the ring is full (the seed model's unbounded
    /// discipline). Returns the sequence number of the new entry.
    pub fn push(&self, mem: &mut MemPool, kind: CqKind, tag: u64, bytes: u64, at: SimTime) -> u64 {
        let seq = mem.read_u64(self.counter);
        self.write_slot(mem, seq, kind, tag, bytes, at);
        mem.write_u64(self.counter, seq + 1);
        seq
    }

    /// NIC side, bounded discipline: append one entry only if the ring
    /// has a free slot relative to the consumer cursor. Returns `None`
    /// when the ring is full — the caller must hold the completion and
    /// retry (backpressure), never overwrite.
    pub fn try_push(
        &self,
        mem: &mut MemPool,
        kind: CqKind,
        tag: u64,
        bytes: u64,
        at: SimTime,
    ) -> Option<u64> {
        if self.depth(mem) >= self.capacity {
            return None;
        }
        Some(self.push(mem, kind, tag, bytes, at))
    }

    fn write_slot(
        &self,
        mem: &mut MemPool,
        seq: u64,
        kind: CqKind,
        tag: u64,
        bytes: u64,
        at: SimTime,
    ) {
        let slot = self.ring.offset_by((seq % self.capacity) * CQ_ENTRY_BYTES);
        mem.write_u64(slot, kind as u64);
        mem.write_u64(slot.offset_by(8), tag);
        mem.write_u64(slot.offset_by(16), bytes);
        mem.write_u64(slot.offset_by(24), at.as_ps());
    }

    /// Consumer side: number of entries ever pushed.
    pub fn head(&self, mem: &MemPool) -> u64 {
        mem.read_u64(self.counter)
    }

    /// Consumer side: number of entries consumed so far (the cursor the
    /// bounded producer respects).
    pub fn consumed(&self, mem: &MemPool) -> u64 {
        mem.read_u64(self.tail)
    }

    /// Entries pushed but not yet consumed.
    pub fn depth(&self, mem: &MemPool) -> u64 {
        self.head(mem).saturating_sub(self.consumed(mem))
    }

    /// Consumer side: advance the cursor to `upto` entries consumed
    /// (monotonic; lower values are ignored).
    pub fn consume_to(&self, mem: &mut MemPool, upto: u64) {
        if upto > self.consumed(mem) {
            mem.write_u64(self.tail, upto);
        }
    }

    /// Consumer side: decode entry `seq`, reporting lag and corruption as
    /// structured errors instead of panicking.
    pub fn read(&self, mem: &MemPool, seq: u64) -> Result<CqEntry, CqError> {
        let head = self.head(mem);
        if seq >= head {
            return Err(CqError::NotYetWritten { seq, head });
        }
        if head - seq > self.capacity {
            return Err(CqError::Overwritten {
                seq,
                head,
                capacity: self.capacity,
            });
        }
        let slot = self.ring.offset_by((seq % self.capacity) * CQ_ENTRY_BYTES);
        let kind = match mem.read_u64(slot) {
            1 => CqKind::SendComplete,
            2 => CqKind::RecvComplete,
            3 => CqKind::Error,
            4 => CqKind::Overflow,
            raw => return Err(CqError::CorruptKind { seq, raw }),
        };
        Ok(CqEntry {
            kind,
            tag: mem.read_u64(slot.offset_by(8)),
            bytes: mem.read_u64(slot.offset_by(16)),
            at: SimTime::from_ps(mem.read_u64(slot.offset_by(24))),
        })
    }

    /// Consumer side: drain all live entries in `[from, head)`. If the
    /// consumer lagged past an overwriting producer, the lost range is
    /// reported as one synthetic [`CqKind::Overflow`] entry (with `tag` =
    /// number of entries lost) followed by the surviving entries.
    pub fn drain_from(&self, mem: &MemPool, from: u64) -> Vec<CqEntry> {
        let head = self.head(mem);
        let live_from = from.max(head.saturating_sub(self.capacity));
        let mut out = Vec::new();
        if live_from > from {
            out.push(CqEntry {
                kind: CqKind::Overflow,
                tag: live_from - from,
                bytes: 0,
                at: SimTime::ZERO,
            });
        }
        out.extend((live_from..head).filter_map(|s| self.read(mem, s).ok()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_mem::NodeId;

    fn setup(capacity: u64) -> (MemPool, CqDesc) {
        let mut mem = MemPool::new(1);
        let cq = CqDesc::alloc(&mut mem, NodeId(0), capacity);
        (mem, cq)
    }

    #[test]
    fn push_and_decode_roundtrip() {
        let (mut mem, cq) = setup(8);
        assert_eq!(cq.head(&mem), 0);
        let seq = cq.push(
            &mut mem,
            CqKind::SendComplete,
            42,
            4096,
            SimTime::from_us(3),
        );
        assert_eq!(seq, 0);
        assert_eq!(cq.head(&mem), 1);
        let e = cq.read(&mem, 0).unwrap();
        assert_eq!(e.kind, CqKind::SendComplete);
        assert_eq!(e.tag, 42);
        assert_eq!(e.bytes, 4096);
        assert_eq!(e.at, SimTime::from_us(3));
    }

    #[test]
    fn ring_wraps_and_drain_reads_in_order() {
        let (mut mem, cq) = setup(4);
        for i in 0..6u64 {
            cq.push(&mut mem, CqKind::RecvComplete, i, 64, SimTime::from_ns(i));
        }
        // Entries 2..6 are still live (capacity 4).
        let drained = cq.drain_from(&mem, 2);
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[0].tag, 2);
        assert_eq!(drained[3].tag, 5);
    }

    #[test]
    fn overrun_is_a_structured_error_not_a_panic() {
        let (mut mem, cq) = setup(2);
        for i in 0..5u64 {
            cq.push(&mut mem, CqKind::SendComplete, i, 8, SimTime::ZERO);
        }
        assert_eq!(
            cq.read(&mem, 0),
            Err(CqError::Overwritten {
                seq: 0,
                head: 5,
                capacity: 2
            })
        );
        // A lagging drain reports the gap as one Overflow marker, then the
        // surviving entries.
        let drained = cq.drain_from(&mem, 0);
        assert_eq!(drained[0].kind, CqKind::Overflow);
        assert_eq!(drained[0].tag, 3, "three entries lost");
        assert_eq!(drained.len(), 3, "marker + two live entries");
        assert_eq!(drained[1].tag, 3);
        assert_eq!(drained[2].tag, 4);
    }

    #[test]
    fn reading_ahead_is_a_structured_error() {
        let (mem, cq) = setup(2);
        assert_eq!(
            cq.read(&mem, 0),
            Err(CqError::NotYetWritten { seq: 0, head: 0 })
        );
    }

    #[test]
    fn bounded_push_respects_the_consumer_cursor() {
        let (mut mem, cq) = setup(2);
        assert!(cq
            .try_push(&mut mem, CqKind::RecvComplete, 0, 8, SimTime::ZERO)
            .is_some());
        assert!(cq
            .try_push(&mut mem, CqKind::RecvComplete, 1, 8, SimTime::ZERO)
            .is_some());
        assert_eq!(cq.depth(&mem), 2);
        assert!(
            cq.try_push(&mut mem, CqKind::RecvComplete, 2, 8, SimTime::ZERO)
                .is_none(),
            "full ring refuses instead of overwriting"
        );
        cq.consume_to(&mut mem, 1);
        assert_eq!(cq.depth(&mem), 1);
        assert!(cq
            .try_push(&mut mem, CqKind::RecvComplete, 2, 8, SimTime::ZERO)
            .is_some());
        // The cursor is monotonic: stale updates are ignored.
        cq.consume_to(&mut mem, 0);
        assert_eq!(cq.consumed(&mem), 1);
    }
}
