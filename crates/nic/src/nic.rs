//! The NIC state machine: command processor, trigger FIFO, DMA engine, and
//! target-side delivery.
//!
//! One [`Nic`] instance per node. The cluster glue schedules
//! [`NicEvent`]s on the simulation engine and routes the [`NicOutput`]s a
//! handler returns — `Local` back onto this NIC, `Remote` onto the
//! destination node's NIC (the fabric model has already computed the
//! arrival time).
//!
//! ### Pipelines modelled
//!
//! - **Command processor** (`cmd_busy`): host doorbells are processed
//!   serially, `cmd_process_ns` each. Posts either execute immediately
//!   ([`NicCommand::Put`]) or register a trigger entry
//!   ([`NicCommand::TriggeredPut`], §3.1 step 1).
//! - **Trigger FIFO** (§3.1 step 3): GPU MMIO writes of tags "are routed to
//!   the NIC and placed in a FIFO associated with the trigger address. The
//!   NIC pops entries from the FIFO and searches the trigger list for a tag
//!   match". Drain rate is set by the lookup implementation's match cost —
//!   the §3.3 ablation.
//! - **DMA engine** (`dma_busy`): serial, `dma_setup_ns` + payload at
//!   `dma_gbps`. Payload bytes are snapshotted at DMA time, so the send
//!   buffer is genuinely reusable at local completion (§4.2.4) — a test
//!   overwrites it and the in-flight message is unaffected.
//! - **Receive path**: arrived messages spend `rx_process_ns` (+ payload
//!   write time), then payload bytes land in target memory and the optional
//!   notification flag is bumped (§4.2.5). Get requests execute a reply put
//!   on the target NIC.

use crate::config::NicConfig;
use crate::cq::{CqDesc, CqKind};
use crate::dynamic::DynFields;
use crate::op::{NetOp, Notify, OpId, Tag};
use crate::trigger::{TriggerError, TriggerList};
use bytes::Bytes;
use gtn_fabric::Fabric;
use gtn_mem::{Addr, MemPool, NodeId};
use gtn_sim::stats::StatSet;
use gtn_sim::time::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// A command the host posts to the NIC by ringing its doorbell.
#[derive(Debug, Clone, PartialEq)]
pub enum NicCommand {
    /// Execute this operation as soon as the command processor reaches it
    /// (classic host-driven post).
    Put(NetOp),
    /// Register a triggered operation: execute `op` once `threshold`
    /// matching tag writes have been collected (Fig. 6 `TrigPut`).
    TriggeredPut {
        /// Tag identifying the trigger entry.
        tag: Tag,
        /// Writes to collect before firing.
        threshold: u64,
        /// The pre-built operation.
        op: NetOp,
    },
}

/// A message in flight between two NICs (scheduled by the initiator's NIC
/// to arrive on the target's).
#[derive(Debug, Clone, PartialEq)]
pub struct RxMessage {
    /// Initiating node.
    pub origin: NodeId,
    /// What arrived.
    pub kind: RxKind,
}

/// Payload vs. get-request arrivals.
#[derive(Debug, Clone, PartialEq)]
pub enum RxKind {
    /// A put payload: write `payload` at `dst`, then apply `notify`.
    Put {
        /// Destination address on this node.
        dst: Addr,
        /// The payload bytes (snapshotted at initiator DMA time).
        payload: Bytes,
        /// Optional target-side notification flag.
        notify: Option<Notify>,
    },
    /// A get request: DMA `len` bytes from local `src` and put them back to
    /// `reply_dst` on `origin`, bumping `reply_notify` there when they land.
    GetRequest {
        /// Source address on this node.
        src: Addr,
        /// Bytes requested.
        len: u64,
        /// Where the reply payload goes on the requesting node.
        reply_dst: Addr,
        /// Completion flag on the requesting node.
        reply_notify: Option<Notify>,
    },
}

/// Events the NIC reacts to.
#[derive(Debug, Clone, PartialEq)]
pub enum NicEvent {
    /// Host doorbell: a command has been written to the command queue. The
    /// glue schedules this `doorbell_ns` after the host's store.
    Doorbell(NicCommand),
    /// Command processor finished decoding a command.
    CmdReady(NicCommand),
    /// A tag store reached the trigger FIFO (`trigger_route_ns` after the
    /// GPU's MMIO write).
    TriggerWrite(Tag),
    /// A *dynamic* trigger descriptor reached the FIFO (§3.4 extension):
    /// tag plus GPU-supplied operation-field overrides.
    TriggerWriteDyn(Tag, DynFields),
    /// Drain one entry from the trigger FIFO.
    FifoDrain,
    /// The DMA engine finished reading an op's send buffer.
    DmaReadDone(OpId),
    /// A message arrived from the fabric.
    RxArrive(RxMessage),
    /// Receive processing finished: commit payload and flags.
    RxDone(RxMessage),
}

/// Follow-up events for the glue to schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum NicOutput {
    /// Schedule `ev` on this same NIC at `at`.
    Local {
        /// Absolute fire time.
        at: SimTime,
        /// The event.
        ev: NicEvent,
    },
    /// Schedule `ev` on node `node`'s NIC at `at`.
    Remote {
        /// Destination node.
        node: NodeId,
        /// Absolute fire time.
        at: SimTime,
        /// The event.
        ev: NicEvent,
    },
}

#[derive(Debug)]
struct InFlight {
    op: NetOp,
}

/// One node's network interface.
#[derive(Debug)]
pub struct Nic {
    node: NodeId,
    config: NicConfig,
    triggers: TriggerList,
    fifo: VecDeque<(Tag, DynFields)>,
    fifo_draining: bool,
    cmd_busy: SimTime,
    dma_busy: SimTime,
    inflight: HashMap<u64, InFlight>,
    next_op: u64,
    stats: StatSet,
    errors: Vec<(SimTime, TriggerError)>,
    /// Optional memory-resident completion queue (the conventional
    /// notification channel GPU-TN's flags replace; see [`crate::cq`]).
    cq: Option<CqDesc>,
}

impl Nic {
    /// A NIC for `node` with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(node: NodeId, config: NicConfig) -> Self {
        config.validate().expect("invalid NIC config");
        let triggers = TriggerList::new(config.lookup);
        Nic {
            node,
            config,
            triggers,
            fifo: VecDeque::new(),
            fifo_draining: false,
            cmd_busy: SimTime::ZERO,
            dma_busy: SimTime::ZERO,
            inflight: HashMap::new(),
            next_op: 0,
            stats: StatSet::new(),
            errors: Vec::new(),
            cq: None,
        }
    }

    /// Attach a completion queue: from now on the NIC reports send
    /// completions (DMA done) and receive completions (payload commit)
    /// into the ring, in addition to any per-operation flags.
    pub fn attach_cq(&mut self, cq: CqDesc) {
        self.cq = Some(cq);
    }

    /// The node this NIC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The active configuration.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Activity counters (commands, trigger writes, fires, rx messages…).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Trigger-list diagnostics.
    pub fn triggers(&self) -> &TriggerList {
        &self.triggers
    }

    /// Trigger errors recorded so far (a healthy run has none). Each entry
    /// models a dropped MMIO write or rejected post.
    pub fn errors(&self) -> &[(SimTime, TriggerError)] {
        &self.errors
    }

    /// Delay the glue should apply between a host doorbell store and the
    /// [`NicEvent::Doorbell`] event.
    pub fn doorbell_delay(&self) -> SimDuration {
        SimDuration::from_ns(self.config.doorbell_ns)
    }

    /// Delay the glue should apply between an agent's MMIO tag store and the
    /// [`NicEvent::TriggerWrite`] event.
    pub fn trigger_route_delay(&self) -> SimDuration {
        SimDuration::from_ns(self.config.trigger_route_ns)
    }

    /// Handle one event at `now`, mutating memory and fabric state, and
    /// return the follow-up events to schedule.
    pub fn handle(
        &mut self,
        now: SimTime,
        ev: NicEvent,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        match ev {
            NicEvent::Doorbell(cmd) => self.on_doorbell(now, cmd),
            NicEvent::CmdReady(cmd) => self.on_cmd_ready(now, cmd, mem, fabric),
            NicEvent::TriggerWrite(tag) => self.on_trigger_write(now, tag, DynFields::NONE),
            NicEvent::TriggerWriteDyn(tag, fields) => self.on_trigger_write(now, tag, fields),
            NicEvent::FifoDrain => self.on_fifo_drain(now, mem, fabric),
            NicEvent::DmaReadDone(op) => self.on_dma_done(now, op, mem, fabric),
            NicEvent::RxArrive(msg) => self.on_rx_arrive(now, msg),
            NicEvent::RxDone(msg) => self.on_rx_done(now, msg, mem, fabric),
        }
    }

    // ---- command path ----------------------------------------------------

    fn on_doorbell(&mut self, now: SimTime, cmd: NicCommand) -> Vec<NicOutput> {
        self.stats.inc("doorbells");
        let start = now.max(self.cmd_busy);
        let ready = start + SimDuration::from_ns(self.config.cmd_process_ns);
        self.cmd_busy = ready;
        vec![NicOutput::Local {
            at: ready,
            ev: NicEvent::CmdReady(cmd),
        }]
    }

    fn on_cmd_ready(
        &mut self,
        now: SimTime,
        cmd: NicCommand,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        match cmd {
            NicCommand::Put(op) => {
                self.stats.inc("posts_immediate");
                self.exec_op(now, op, mem, fabric)
            }
            NicCommand::TriggeredPut { tag, threshold, op } => {
                self.stats.inc("posts_triggered");
                match self.triggers.register(tag, op, threshold) {
                    Ok(Some(fired)) => {
                        // Relaxed sync (§3.2): counter already met the
                        // threshold when the post arrived.
                        self.stats.inc("fired_at_post");
                        self.exec_op(now, fired.op, mem, fabric)
                    }
                    Ok(None) => Vec::new(),
                    Err(e) => {
                        self.errors.push((now, e));
                        self.stats.inc("trigger_errors");
                        Vec::new()
                    }
                }
            }
        }
    }

    // ---- trigger FIFO (§3.1 step 3) ---------------------------------------

    fn on_trigger_write(&mut self, now: SimTime, tag: Tag, fields: DynFields) -> Vec<NicOutput> {
        self.stats.inc("trigger_writes");
        if !fields.is_empty() {
            self.stats.inc("trigger_writes_dyn");
        }
        self.fifo.push_back((tag, fields));
        if !self.fifo_draining {
            self.fifo_draining = true;
            let cost = self.head_match_cost();
            vec![NicOutput::Local {
                at: now + cost,
                ev: NicEvent::FifoDrain,
            }]
        } else {
            Vec::new()
        }
    }

    /// Match cost for the FIFO head: the lookup cost plus the descriptor
    /// parse surcharge when the head is a dynamic write.
    fn head_match_cost(&self) -> SimDuration {
        let mut cost = self.triggers.match_cost();
        if let Some((_, fields)) = self.fifo.front() {
            if !fields.is_empty() {
                cost += SimDuration::from_ns(self.config.dyn_match_extra_ns);
            }
        }
        cost
    }

    fn on_fifo_drain(
        &mut self,
        now: SimTime,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        let Some((tag, fields)) = self.fifo.pop_front() else {
            self.fifo_draining = false;
            return Vec::new();
        };
        let mut out = match self.triggers.trigger_dyn(tag, fields) {
            Ok(Some(fired)) => {
                self.stats.inc("fired_at_trigger");
                self.exec_op(now, fired.op, mem, fabric)
            }
            Ok(None) => Vec::new(),
            Err(e) => {
                self.errors.push((now, e));
                self.stats.inc("trigger_errors");
                Vec::new()
            }
        };
        if self.fifo.is_empty() {
            self.fifo_draining = false;
        } else {
            let cost = self.head_match_cost();
            out.push(NicOutput::Local {
                at: now + cost,
                ev: NicEvent::FifoDrain,
            });
        }
        out
    }

    // ---- initiator side ---------------------------------------------------

    /// Begin executing a network operation (§3.1 step 4).
    fn exec_op(
        &mut self,
        now: SimTime,
        op: NetOp,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        match op {
            put @ NetOp::Put { .. } => {
                let id = OpId(self.next_op);
                self.next_op += 1;
                let len = put.len();
                self.inflight.insert(id.0, InFlight { op: put });
                // Serial DMA engine.
                let start = now.max(self.dma_busy);
                let done = start
                    + SimDuration::from_ns(self.config.dma_setup_ns)
                    + SimDuration::for_bytes_at_gbps(len, self.config.dma_gbps * 8.0);
                self.dma_busy = done;
                let _ = mem; // bytes are snapshotted at DMA completion
                vec![NicOutput::Local {
                    at: done,
                    ev: NicEvent::DmaReadDone(id),
                }]
            }
            NetOp::Get {
                src,
                len,
                target,
                dst,
                completion,
            } => {
                self.stats.inc("gets_sent");
                // A get request is a small control message; payload flows
                // back as a put from the target.
                let timing = fabric.send_message(now, self.node, target, 16);
                let msg = RxMessage {
                    origin: self.node,
                    kind: RxKind::GetRequest {
                        src,
                        len,
                        reply_dst: dst,
                        reply_notify: completion.map(|flag| Notify { flag, add: 1, chain: None }),
                    },
                };
                vec![NicOutput::Remote {
                    node: target,
                    at: timing.last_arrival,
                    ev: NicEvent::RxArrive(msg),
                }]
            }
        }
    }

    fn on_dma_done(
        &mut self,
        now: SimTime,
        id: OpId,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        let inflight = self
            .inflight
            .remove(&id.0)
            .unwrap_or_else(|| panic!("unknown in-flight op {id:?}"));
        let NetOp::Put {
            src,
            len,
            target,
            dst,
            notify,
            completion,
        } = inflight.op
        else {
            unreachable!("only puts enter the DMA engine");
        };
        // Snapshot the payload: from here on the app may reuse the buffer.
        let payload = Bytes::copy_from_slice(mem.read(src, len));
        if let Some(flag) = completion {
            // Local completion (§4.2.4): the send buffer is reusable.
            mem.fetch_add_u64(flag, 1);
            self.stats.inc("local_completions");
        }
        if let Some(cq) = self.cq {
            cq.push(mem, CqKind::SendComplete, 0, len, now);
            self.stats.inc("cq_entries");
        }
        self.stats.inc("puts_injected");
        self.stats.add("bytes_tx", len);
        let timing = fabric.send_message(now, self.node, target, len);
        let msg = RxMessage {
            origin: self.node,
            kind: RxKind::Put {
                dst,
                payload,
                notify,
            },
        };
        if target == self.node {
            vec![NicOutput::Local {
                at: timing.last_arrival,
                ev: NicEvent::RxArrive(msg),
            }]
        } else {
            vec![NicOutput::Remote {
                node: target,
                at: timing.last_arrival,
                ev: NicEvent::RxArrive(msg),
            }]
        }
    }

    // ---- target side ------------------------------------------------------

    fn on_rx_arrive(&mut self, now: SimTime, msg: RxMessage) -> Vec<NicOutput> {
        self.stats.inc("rx_messages");
        let payload_len = match &msg.kind {
            RxKind::Put { payload, .. } => payload.len() as u64,
            RxKind::GetRequest { .. } => 0,
        };
        // Payload commit cost: fixed processing plus the memory-write time.
        let done = now
            + SimDuration::from_ns(self.config.rx_process_ns)
            + SimDuration::for_bytes_at_gbps(payload_len, self.config.dma_gbps * 8.0);
        vec![NicOutput::Local {
            at: done,
            ev: NicEvent::RxDone(msg),
        }]
    }

    fn on_rx_done(
        &mut self,
        now: SimTime,
        msg: RxMessage,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        match msg.kind {
            RxKind::Put {
                dst,
                payload,
                notify,
            } => {
                self.stats.add("bytes_rx", payload.len() as u64);
                mem.write(dst, &payload);
                if let Some(cq) = self.cq {
                    cq.push(mem, CqKind::RecvComplete, 0, payload.len() as u64, now);
                    self.stats.inc("cq_entries");
                }
                let mut out = Vec::new();
                if let Some(n) = notify {
                    // Flag is written flag_write_ns later, but the value must
                    // be visible when any poller at that instant reads it;
                    // commit now and account the cost in stats only.
                    mem.fetch_add_u64(n.flag, n.add);
                    self.stats.inc("notifies");
                    if let Some(tag) = n.chain {
                        // Portals-4 counter chaining ([40]): the arrival
                        // itself progresses this NIC's trigger list — no
                        // CPU, no GPU, no kernel boundary.
                        self.stats.inc("chained_triggers");
                        out.push(NicOutput::Local {
                            at: now + SimDuration::from_ns(self.config.flag_write_ns),
                            ev: NicEvent::TriggerWrite(tag),
                        });
                    }
                }
                out
            }
            RxKind::GetRequest {
                src,
                len,
                reply_dst,
                reply_notify,
            } => {
                self.stats.inc("gets_served");
                // Serve the get: put the requested bytes back to the origin.
                let reply = NetOp::Put {
                    src,
                    len,
                    target: msg.origin,
                    dst: reply_dst,
                    notify: reply_notify,
                    completion: None,
                };
                self.exec_op(now, reply, mem, fabric)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_fabric::FabricConfig;
    use gtn_sim::Engine;

    /// Minimal two-node harness: routes NIC outputs through a real engine.
    struct Harness {
        nics: Vec<Nic>,
        mem: MemPool,
        fabric: Fabric,
        engine: Engine<(usize, NicEvent)>,
    }

    impl Harness {
        fn new(n: usize) -> Self {
            Harness {
                nics: (0..n)
                    .map(|i| Nic::new(NodeId(i as u32), NicConfig::default()))
                    .collect(),
                mem: MemPool::new(n),
                fabric: Fabric::new(n, FabricConfig::default()),
                engine: Engine::new(),
            }
        }

        fn doorbell(&mut self, node: usize, cmd: NicCommand) {
            let d = self.nics[node].doorbell_delay();
            self.engine
                .schedule_after(d, (node, NicEvent::Doorbell(cmd)));
        }

        fn trigger(&mut self, node: usize, tag: Tag) {
            let d = self.nics[node].trigger_route_delay();
            self.engine
                .schedule_after(d, (node, NicEvent::TriggerWrite(tag)));
        }

        fn run(&mut self) -> SimTime {
            let nics = &mut self.nics;
            let mem = &mut self.mem;
            let fabric = &mut self.fabric;
            self.engine.run(|eng, (node, ev)| {
                for out in nics[node].handle(eng.now(), ev, mem, fabric) {
                    match out {
                        NicOutput::Local { at, ev } => eng.schedule_at(at, (node, ev)),
                        NicOutput::Remote { node, at, ev } => {
                            eng.schedule_at(at, (node.index(), ev))
                        }
                    }
                }
            });
            self.engine.now()
        }
    }

    fn put(h: &mut Harness, len: u64) -> (Addr, Addr, Addr, Addr) {
        let src = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), len.max(8), "src"));
        let dst = Addr::base(NodeId(1), h.mem.alloc(NodeId(1), len.max(8), "dst"));
        let comp = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), 8, "comp"));
        let flag = Addr::base(NodeId(1), h.mem.alloc(NodeId(1), 8, "flag"));
        (src, dst, comp, flag)
    }

    fn put_op(src: Addr, dst: Addr, len: u64, comp: Addr, flag: Addr) -> NetOp {
        NetOp::Put {
            src,
            len,
            target: NodeId(1),
            dst,
            notify: Some(Notify { flag, add: 1, chain: None }),
            completion: Some(comp),
        }
    }

    #[test]
    fn immediate_put_delivers_payload_and_flags() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 64);
        h.mem.write(src, &[0xAB; 64]);
        h.doorbell(0, NicCommand::Put(put_op(src, dst, 64, comp, flag)));
        let end = h.run();
        assert_eq!(h.mem.read(dst, 64), &[0xAB; 64]);
        assert_eq!(h.mem.read_u64(flag), 1, "target notify");
        assert_eq!(h.mem.read_u64(comp), 1, "local completion");
        // Sanity on the latency scale: sub-microsecond for 64 B.
        assert!(end < SimTime::from_us(2), "end {end}");
        assert!(end > SimTime::from_ns(500), "end {end}");
        assert_eq!(h.nics[1].stats().counter("rx_messages"), 1);
        assert_eq!(h.nics[0].stats().counter("puts_injected"), 1);
    }

    #[test]
    fn triggered_put_waits_for_tag_write() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 64);
        h.mem.write(src, &[7; 64]);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(3),
                threshold: 1,
                op: put_op(src, dst, 64, comp, flag),
            },
        );
        // Run with no trigger: nothing must be delivered.
        h.run();
        assert_eq!(h.mem.read_u64(flag), 0);
        assert_eq!(h.nics[0].triggers().active(), 1);
        // Now the GPU writes the tag.
        h.trigger(0, Tag(3));
        h.run();
        assert_eq!(h.mem.read(dst, 64), &[7; 64]);
        assert_eq!(h.mem.read_u64(flag), 1);
        assert_eq!(h.nics[0].stats().counter("fired_at_trigger"), 1);
        assert!(h.nics[0].errors().is_empty());
    }

    #[test]
    fn relaxed_sync_trigger_first_post_later() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 32);
        h.mem.write(src, &[1; 32]);
        // GPU triggers before the CPU post (§3.2).
        h.trigger(0, Tag(10));
        h.run();
        assert_eq!(h.nics[0].triggers().early_allocations(), 1);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(10),
                threshold: 1,
                op: put_op(src, dst, 32, comp, flag),
            },
        );
        h.run();
        assert_eq!(h.mem.read_u64(flag), 1);
        assert_eq!(h.nics[0].stats().counter("fired_at_post"), 1);
    }

    #[test]
    fn threshold_counts_across_many_trigger_writes() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 16);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(0),
                threshold: 8,
                op: put_op(src, dst, 16, comp, flag),
            },
        );
        h.run();
        for _ in 0..7 {
            h.trigger(0, Tag(0));
        }
        h.run();
        assert_eq!(h.mem.read_u64(flag), 0, "7 of 8 writes: not yet");
        h.trigger(0, Tag(0));
        h.run();
        assert_eq!(h.mem.read_u64(flag), 1);
    }

    #[test]
    fn send_buffer_snapshot_makes_local_completion_safe() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 64);
        h.mem.write(src, &[0x11; 64]);
        h.doorbell(0, NicCommand::Put(put_op(src, dst, 64, comp, flag)));
        // Drive until local completion, then trash the buffer before
        // delivery completes.
        let mem_comp = comp;
        let nics = &mut h.nics;
        let mem = &mut h.mem;
        let fabric = &mut h.fabric;
        let mut trashed = false;
        h.engine.run(|eng, (node, ev)| {
            for out in nics[node].handle(eng.now(), ev, mem, fabric) {
                match out {
                    NicOutput::Local { at, ev } => eng.schedule_at(at, (node, ev)),
                    NicOutput::Remote { node, at, ev } => eng.schedule_at(at, (node.index(), ev)),
                }
            }
            if !trashed && mem.read_u64(mem_comp) == 1 {
                mem.write(src, &[0xFF; 64]);
                trashed = true;
            }
        });
        assert!(trashed, "local completion observed");
        assert_eq!(h.mem.read(dst, 64), &[0x11; 64], "snapshot, not live read");
    }

    #[test]
    fn get_round_trip_fetches_remote_bytes() {
        let mut h = Harness::new(2);
        let remote = Addr::base(NodeId(1), h.mem.alloc(NodeId(1), 64, "remote"));
        let local = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), 64, "local"));
        let comp = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), 8, "comp"));
        h.mem.write(remote, &[0x5A; 64]);
        h.doorbell(
            0,
            NicCommand::Put(NetOp::Get {
                src: remote,
                len: 64,
                target: NodeId(1),
                dst: local,
                completion: Some(comp),
            }),
        );
        h.run();
        assert_eq!(h.mem.read(local, 64), &[0x5A; 64]);
        assert_eq!(h.mem.read_u64(comp), 1);
        assert_eq!(h.nics[1].stats().counter("gets_served"), 1);
    }

    #[test]
    fn fifo_storm_drains_in_order_and_completely() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 8);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(0),
                threshold: 64,
                op: put_op(src, dst, 8, comp, flag),
            },
        );
        h.run();
        // 64 near-simultaneous writes (a wavefront's worth).
        for _ in 0..64 {
            h.trigger(0, Tag(0));
        }
        h.run();
        assert_eq!(h.mem.read_u64(flag), 1);
        assert_eq!(h.nics[0].stats().counter("trigger_writes"), 64);
        assert!(h.nics[0].errors().is_empty());
    }

    #[test]
    fn capacity_overflow_is_recorded_not_fatal() {
        let mut h = Harness::new(2);
        h.nics[0] = Nic::new(
            NodeId(0),
            NicConfig {
                lookup: crate::lookup::LookupKind::Associative { ways: 2 },
                ..NicConfig::default()
            },
        );
        // Three early triggers with distinct tags: third exceeds capacity.
        h.trigger(0, Tag(1));
        h.trigger(0, Tag(2));
        h.trigger(0, Tag(3));
        h.run();
        assert_eq!(h.nics[0].errors().len(), 1);
        assert_eq!(h.nics[0].stats().counter("trigger_errors"), 1);
    }

    #[test]
    fn self_put_loops_back() {
        let mut h = Harness::new(2);
        let src = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), 32, "src"));
        let dst = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), 32, "dst"));
        h.mem.write(src, &[3; 32]);
        h.doorbell(
            0,
            NicCommand::Put(NetOp::Put {
                src,
                len: 32,
                target: NodeId(0),
                dst,
                notify: None,
                completion: None,
            }),
        );
        h.run();
        assert_eq!(h.mem.read(dst, 32), &[3; 32]);
    }
}
