//! The NIC state machine: command processor, trigger FIFO, DMA engine, and
//! target-side delivery.
//!
//! One [`Nic`] instance per node. The cluster glue schedules
//! [`NicEvent`]s on the simulation engine and routes the [`NicOutput`]s a
//! handler returns — `Local` back onto this NIC, `Remote` onto the
//! destination node's NIC (the fabric model has already computed the
//! arrival time).
//!
//! ### Pipelines modelled
//!
//! - **Command processor** (`cmd_busy`): host doorbells are processed
//!   serially, `cmd_process_ns` each. Posts either execute immediately
//!   ([`NicCommand::Put`]) or register a trigger entry
//!   ([`NicCommand::TriggeredPut`], §3.1 step 1).
//! - **Trigger FIFO** (§3.1 step 3): GPU MMIO writes of tags "are routed to
//!   the NIC and placed in a FIFO associated with the trigger address. The
//!   NIC pops entries from the FIFO and searches the trigger list for a tag
//!   match". Drain rate is set by the lookup implementation's match cost —
//!   the §3.3 ablation.
//! - **DMA engine** (`dma_busy`): serial, `dma_setup_ns` + payload at
//!   `dma_gbps`. Payload bytes are snapshotted at DMA time, so the send
//!   buffer is genuinely reusable at local completion (§4.2.4) — a test
//!   overwrites it and the in-flight message is unaffected.
//! - **Receive path**: arrived messages spend `rx_process_ns` (+ payload
//!   write time), then payload bytes land in target memory and the optional
//!   notification flag is bumped (§4.2.5). Get requests execute a reply put
//!   on the target NIC.

use crate::config::NicConfig;
use crate::cq::{CqDesc, CqKind};
use crate::dynamic::DynFields;
use crate::op::{NetOp, Notify, OpId, Tag};
use crate::reliability::{Accept, DeliveryCause, DeliveryFailure, Reliability, TimerVerdict};
use crate::trigger::{TriggerError, TriggerList};
use bytes::Bytes;
use gtn_fabric::{Delivery, Fabric};
use gtn_mem::{Addr, MemPool, NodeId};
use gtn_sim::stats::StatSet;
use gtn_sim::time::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// A command the host posts to the NIC by ringing its doorbell.
#[derive(Debug, Clone, PartialEq)]
pub enum NicCommand {
    /// Execute this operation as soon as the command processor reaches it
    /// (classic host-driven post).
    Put(NetOp),
    /// Register a triggered operation: execute `op` once `threshold`
    /// matching tag writes have been collected (Fig. 6 `TrigPut`).
    TriggeredPut {
        /// Tag identifying the trigger entry.
        tag: Tag,
        /// Writes to collect before firing.
        threshold: u64,
        /// The pre-built operation.
        op: NetOp,
    },
}

/// A message in flight between two NICs (scheduled by the initiator's NIC
/// to arrive on the target's).
#[derive(Debug, Clone, PartialEq)]
pub struct RxMessage {
    /// Initiating node.
    pub origin: NodeId,
    /// When this attempt left the origin NIC (re-stamped per retransmit).
    /// The receiver derives the wire-stage latency from it.
    pub injected_at: SimTime,
    /// Sequence number assigned by the origin's reliability layer; `None`
    /// when ARQ is disabled or the message is not tracked (loopback, ACKs).
    pub seq: Option<u64>,
    /// True when the fault plan corrupted this message in flight: it
    /// arrives on time but the receiver must discard it (a real NIC's CRC
    /// check fails) and wait for the retransmit.
    pub corrupt: bool,
    /// What arrived.
    pub kind: RxKind,
}

/// Payload vs. get-request arrivals.
#[derive(Debug, Clone, PartialEq)]
pub enum RxKind {
    /// A put payload: write `payload` at `dst`, then apply `notify`.
    Put {
        /// Destination address on this node.
        dst: Addr,
        /// The payload bytes (snapshotted at initiator DMA time).
        payload: Bytes,
        /// Optional target-side notification flag.
        notify: Option<Notify>,
    },
    /// A get request: DMA `len` bytes from local `src` and put them back to
    /// `reply_dst` on `origin`, bumping `reply_notify` there when they land.
    GetRequest {
        /// Source address on this node.
        src: Addr,
        /// Bytes requested.
        len: u64,
        /// Where the reply payload goes on the requesting node.
        reply_dst: Addr,
        /// Completion flag on the requesting node.
        reply_notify: Option<Notify>,
    },
    /// Acknowledgement of a tracked message: the receiver committed (or
    /// had already committed) sequence `seq` from this ACK's destination.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
        /// Flow-control credits the receiver advertises: reorder-buffer
        /// room left for the ACK's destination. `0` when flow control is
        /// off (ignored by the receiver of the ACK then).
        credits: u64,
    },
}

/// Events the NIC reacts to.
#[derive(Debug, Clone, PartialEq)]
pub enum NicEvent {
    /// Host doorbell: a command has been written to the command queue. The
    /// glue schedules this `doorbell_ns` after the host's store.
    Doorbell(NicCommand),
    /// Command processor finished decoding a command.
    CmdReady(NicCommand),
    /// A tag store reached the trigger FIFO (`trigger_route_ns` after the
    /// GPU's MMIO write).
    TriggerWrite(Tag),
    /// A *dynamic* trigger descriptor reached the FIFO (§3.4 extension):
    /// tag plus GPU-supplied operation-field overrides.
    TriggerWriteDyn(Tag, DynFields),
    /// Drain one entry from the trigger FIFO.
    FifoDrain,
    /// The DMA engine finished reading an op's send buffer.
    DmaReadDone(OpId),
    /// A message arrived from the fabric.
    RxArrive(RxMessage),
    /// Receive processing finished: commit payload and flags.
    RxDone(RxMessage),
    /// A retransmit timer set when sequence `seq` toward `target` was sent
    /// for the `attempt`-th time expired. Stale timers (message since
    /// ACKed, or a newer attempt outstanding) are ignored.
    RetryTimer {
        /// Destination node of the guarded message (sequence spaces are
        /// per directed pair).
        target: NodeId,
        /// Tracked sequence number.
        seq: u64,
        /// The send attempt this timer guards (1 = original send).
        attempt: u32,
    },
    /// The modeled host consumer of a *bounded* completion queue retires
    /// one entry (every `cq_drain_ns`), unblocking parked commits.
    CqDrain,
}

/// Out-of-band journal records describing fault and reliability activity.
/// The cluster glue drains these with [`Nic::take_notes`] and folds them
/// into its activity log; standalone users may ignore them.
#[derive(Debug, Clone, PartialEq)]
pub enum NicNote {
    /// The fault plan dropped this attempt of a tracked message.
    MessageDropped {
        /// Tracked sequence number.
        seq: u64,
        /// Destination node.
        target: NodeId,
    },
    /// The fault plan corrupted this attempt; it arrives but is discarded.
    MessageCorrupted {
        /// Tracked sequence number.
        seq: u64,
        /// Destination node.
        target: NodeId,
    },
    /// A retry timer expired and the message was retransmitted.
    Retransmitted {
        /// Tracked sequence number.
        seq: u64,
        /// Send attempt just made (2 = first retransmit).
        attempt: u32,
        /// Destination node.
        target: NodeId,
    },
    /// Delivery abandoned permanently — the retry budget ran out, or the
    /// failure detector declared the peer dead and pending messages toward
    /// it were failed fast.
    DeliveryFailed {
        /// Tracked sequence number.
        seq: u64,
        /// Destination it never confirmably reached.
        target: NodeId,
        /// Total sends attempted.
        attempts: u32,
        /// Why delivery was abandoned.
        cause: DeliveryCause,
    },
    /// A trigger registration or tag write was rejected.
    TriggerRejected(TriggerError),
    /// A receive commit parked on a full bounded completion queue resumed
    /// after `waited` (the `cq_stall` stage).
    CqStalled {
        /// How long the commit was parked.
        waited: SimDuration,
    },
}

/// Follow-up events for the glue to schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum NicOutput {
    /// Schedule `ev` on this same NIC at `at`.
    Local {
        /// Absolute fire time.
        at: SimTime,
        /// The event.
        ev: NicEvent,
    },
    /// Schedule `ev` on node `node`'s NIC at `at`.
    Remote {
        /// Destination node.
        node: NodeId,
        /// Absolute fire time.
        at: SimTime,
        /// The event.
        ev: NicEvent,
    },
}

#[derive(Debug)]
struct InFlight {
    op: NetOp,
    /// When the op entered the DMA engine (injection-stage start).
    started: SimTime,
}

/// One node's network interface.
#[derive(Debug)]
pub struct Nic {
    node: NodeId,
    config: NicConfig,
    triggers: TriggerList,
    /// Pending tag writes with their FIFO-arrival instant, so the drain can
    /// attribute queueing + match time to the trigger-match stage.
    fifo: VecDeque<(Tag, DynFields, SimTime)>,
    fifo_draining: bool,
    cmd_busy: SimTime,
    dma_busy: SimTime,
    inflight: HashMap<u64, InFlight>,
    next_op: u64,
    stats: StatSet,
    errors: Vec<(SimTime, TriggerError)>,
    /// Optional memory-resident completion queue (the conventional
    /// notification channel GPU-TN's flags replace; see [`crate::cq`]).
    cq: Option<CqDesc>,
    /// ARQ state (sequence numbers, unacked messages, receive dedupe).
    rel: Reliability<RxMessage>,
    /// Flow control: new sends queued per target while that target's
    /// credit grant is zero; drained FIFO as ACKs restore credit, so
    /// sequence numbers stay in send order.
    flow_queue: HashMap<u32, VecDeque<(u64, RxMessage)>>,
    /// Bounded CQ: receive commits parked (with their park instant)
    /// because the ring was full; resumed FIFO by [`NicEvent::CqDrain`].
    cq_waiting: VecDeque<(SimTime, RxMessage)>,
    /// Bounded CQ: send/error completion entries that found the ring full
    /// — `(completed_at, kind, tag, bytes)` — flushed before parked
    /// commits when the consumer frees slots. Never overwritten, never
    /// dropped.
    cq_backlog: VecDeque<(SimTime, CqKind, u64, u64)>,
    /// Whether a [`NicEvent::CqDrain`] is already scheduled.
    cq_drain_scheduled: bool,
    /// Trigger-list spill/promotion/shed totals already folded into
    /// `stats`.
    spills_synced: u64,
    promotions_synced: u64,
    shed_synced: u64,
    /// Journal of fault/reliability activity, drained by the cluster glue.
    notes: Vec<(SimTime, NicNote)>,
}

impl Nic {
    /// A NIC for `node` with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(node: NodeId, config: NicConfig) -> Self {
        config.validate().expect("invalid NIC config");
        let triggers = TriggerList::with_partitions(
            config.lookup,
            config.trigger_overflow_capacity,
            config.trigger_partitions,
        );
        let rel = Reliability::new(config.reliability.clone());
        Nic {
            node,
            config,
            triggers,
            fifo: VecDeque::new(),
            fifo_draining: false,
            cmd_busy: SimTime::ZERO,
            dma_busy: SimTime::ZERO,
            inflight: HashMap::new(),
            next_op: 0,
            stats: StatSet::new(),
            errors: Vec::new(),
            cq: None,
            rel,
            flow_queue: HashMap::new(),
            cq_waiting: VecDeque::new(),
            cq_backlog: VecDeque::new(),
            cq_drain_scheduled: false,
            spills_synced: 0,
            promotions_synced: 0,
            shed_synced: 0,
            notes: Vec::new(),
        }
    }

    /// Attach a completion queue: from now on the NIC reports send
    /// completions (DMA done) and receive completions (payload commit)
    /// into the ring, in addition to any per-operation flags.
    pub fn attach_cq(&mut self, cq: CqDesc) {
        self.cq = Some(cq);
    }

    /// The node this NIC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The active configuration.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Activity counters (commands, trigger writes, fires, rx messages…).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Trigger-list diagnostics.
    pub fn triggers(&self) -> &TriggerList {
        &self.triggers
    }

    /// Trigger errors recorded so far (a healthy run has none). Each entry
    /// models a dropped MMIO write or rejected post.
    pub fn errors(&self) -> &[(SimTime, TriggerError)] {
        &self.errors
    }

    /// Drain the fault/reliability journal accumulated since the last call.
    pub fn take_notes(&mut self) -> Vec<(SimTime, NicNote)> {
        std::mem::take(&mut self.notes)
    }

    /// Messages sent but not yet acknowledged: `(seq, target, attempts)`.
    /// Nonzero entries in a quiescent cluster mean someone is retrying.
    pub fn pending_retries(&self) -> Vec<(u64, NodeId, u32)> {
        self.rel.pending()
    }

    /// Messages abandoned after exhausting the retry budget.
    pub fn delivery_failures(&self) -> &[DeliveryFailure] {
        self.rel.failures()
    }

    /// Commits and completion entries currently parked on a full bounded
    /// CQ. Nonzero in a quiescent cluster means the consumer starved.
    pub fn cq_parked(&self) -> usize {
        self.cq_waiting.len() + self.cq_backlog.len()
    }

    /// New sends queued for flow-control credit across all targets.
    pub fn flow_queued(&self) -> usize {
        self.flow_queue.values().map(VecDeque::len).sum()
    }

    fn note(&mut self, at: SimTime, note: NicNote) {
        self.notes.push((at, note));
    }

    /// Delay the glue should apply between a host doorbell store and the
    /// [`NicEvent::Doorbell`] event.
    pub fn doorbell_delay(&self) -> SimDuration {
        SimDuration::from_ns(self.config.doorbell_ns)
    }

    /// Delay the glue should apply between an agent's MMIO tag store and the
    /// [`NicEvent::TriggerWrite`] event.
    pub fn trigger_route_delay(&self) -> SimDuration {
        SimDuration::from_ns(self.config.trigger_route_ns)
    }

    /// Handle one event at `now`, mutating memory and fabric state, and
    /// return the follow-up events to schedule.
    pub fn handle(
        &mut self,
        now: SimTime,
        ev: NicEvent,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        match ev {
            NicEvent::Doorbell(cmd) => self.on_doorbell(now, cmd),
            NicEvent::CmdReady(cmd) => self.on_cmd_ready(now, cmd, mem, fabric),
            NicEvent::TriggerWrite(tag) => self.on_trigger_write(now, tag, DynFields::NONE),
            NicEvent::TriggerWriteDyn(tag, fields) => self.on_trigger_write(now, tag, fields),
            NicEvent::FifoDrain => self.on_fifo_drain(now, mem, fabric),
            NicEvent::DmaReadDone(op) => self.on_dma_done(now, op, mem, fabric),
            NicEvent::RxArrive(msg) => self.on_rx_arrive(now, msg, fabric),
            NicEvent::RxDone(msg) => self.on_rx_done(now, msg, mem, fabric),
            NicEvent::RetryTimer {
                target,
                seq,
                attempt,
            } => self.on_retry_timer(now, target, seq, attempt, mem, fabric),
            NicEvent::CqDrain => self.on_cq_drain(now, mem, fabric),
        }
    }

    // ---- command path ----------------------------------------------------

    fn on_doorbell(&mut self, now: SimTime, cmd: NicCommand) -> Vec<NicOutput> {
        self.stats.inc("doorbells");
        let start = now.max(self.cmd_busy);
        let ready = start + SimDuration::from_ns(self.config.cmd_process_ns);
        // Doorbell stage: command-queue wait + decode.
        self.stats.record("stage_doorbell", ready - now);
        self.cmd_busy = ready;
        vec![NicOutput::Local {
            at: ready,
            ev: NicEvent::CmdReady(cmd),
        }]
    }

    fn on_cmd_ready(
        &mut self,
        now: SimTime,
        cmd: NicCommand,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        match cmd {
            NicCommand::Put(op) => {
                self.stats.inc("posts_immediate");
                self.exec_op(now, op, mem, fabric)
            }
            NicCommand::TriggeredPut { tag, threshold, op } => {
                self.stats.inc("posts_triggered");
                let res = self.triggers.register(tag, op, threshold);
                self.sync_trigger_pressure_stats();
                match res {
                    Ok(Some(fired)) => {
                        // Relaxed sync (§3.2): counter already met the
                        // threshold when the post arrived.
                        self.stats.inc("fired_at_post");
                        self.exec_op(now, fired.op, mem, fabric)
                    }
                    Ok(None) => Vec::new(),
                    Err(e) => {
                        self.note(now, NicNote::TriggerRejected(e.clone()));
                        self.errors.push((now, e));
                        self.stats.inc("trigger_errors");
                        Vec::new()
                    }
                }
            }
        }
    }

    // ---- trigger FIFO (§3.1 step 3) ---------------------------------------

    fn on_trigger_write(&mut self, now: SimTime, tag: Tag, fields: DynFields) -> Vec<NicOutput> {
        self.stats.inc("trigger_writes");
        if !fields.is_empty() {
            self.stats.inc("trigger_writes_dyn");
        }
        self.fifo.push_back((tag, fields, now));
        if !self.fifo_draining {
            self.fifo_draining = true;
            let cost = self.head_match_cost();
            vec![NicOutput::Local {
                at: now + cost,
                ev: NicEvent::FifoDrain,
            }]
        } else {
            Vec::new()
        }
    }

    /// Match cost for the FIFO head: the lookup cost plus the descriptor
    /// parse surcharge when the head is a dynamic write, plus the
    /// host-memory walk surcharge when the tag resolves to the overflow
    /// (spill) table rather than the CAM.
    fn head_match_cost(&self) -> SimDuration {
        let mut cost = self.triggers.match_cost();
        if let Some((tag, fields, _)) = self.fifo.front() {
            if !fields.is_empty() {
                cost += SimDuration::from_ns(self.config.dyn_match_extra_ns);
            }
            if self.triggers.resolves_to_overflow(*tag) {
                cost += SimDuration::from_ns(self.config.spill_match_extra_ns);
            }
        }
        cost
    }

    /// Fold new trigger-list spill/promotion activity into the stat set.
    /// Counters appear only once the first spill happens, so unpressured
    /// runs keep their exact stat schema.
    fn sync_trigger_pressure_stats(&mut self) {
        let spills = self.triggers.spills();
        if spills > self.spills_synced {
            self.stats
                .add("trigger_spills", spills - self.spills_synced);
            self.spills_synced = spills;
        }
        let promotions = self.triggers.promotions();
        if promotions > self.promotions_synced {
            self.stats
                .add("trigger_promotions", promotions - self.promotions_synced);
            self.promotions_synced = promotions;
        }
        let shed = self.triggers.admission_shed();
        if shed > self.shed_synced {
            self.stats.add("admission_shed", shed - self.shed_synced);
            self.shed_synced = shed;
        }
    }

    fn on_fifo_drain(
        &mut self,
        now: SimTime,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        let Some((tag, fields, enqueued)) = self.fifo.pop_front() else {
            self.fifo_draining = false;
            return Vec::new();
        };
        // Trigger-match stage: FIFO queueing + list lookup for this tag.
        self.stats.record("stage_trigger_match", now - enqueued);
        let res = self.triggers.trigger_dyn(tag, fields);
        self.sync_trigger_pressure_stats();
        let mut out = match res {
            Ok(Some(fired)) => {
                self.stats.inc("fired_at_trigger");
                self.exec_op(now, fired.op, mem, fabric)
            }
            Ok(None) => Vec::new(),
            Err(e) => {
                self.note(now, NicNote::TriggerRejected(e.clone()));
                self.errors.push((now, e));
                self.stats.inc("trigger_errors");
                Vec::new()
            }
        };
        if self.fifo.is_empty() {
            self.fifo_draining = false;
        } else {
            let cost = self.head_match_cost();
            out.push(NicOutput::Local {
                at: now + cost,
                ev: NicEvent::FifoDrain,
            });
        }
        out
    }

    // ---- initiator side ---------------------------------------------------

    /// Begin executing a network operation (§3.1 step 4).
    fn exec_op(
        &mut self,
        now: SimTime,
        op: NetOp,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        match op {
            put @ NetOp::Put { .. } => {
                let id = OpId(self.next_op);
                self.next_op += 1;
                let len = put.len();
                self.inflight.insert(
                    id.0,
                    InFlight {
                        op: put,
                        started: now,
                    },
                );
                // Serial DMA engine.
                let start = now.max(self.dma_busy);
                let done = start
                    + SimDuration::from_ns(self.config.dma_setup_ns)
                    + SimDuration::for_bytes_at_gbps(len, self.config.dma_gbps * 8.0);
                self.dma_busy = done;
                let _ = mem; // bytes are snapshotted at DMA completion
                vec![NicOutput::Local {
                    at: done,
                    ev: NicEvent::DmaReadDone(id),
                }]
            }
            NetOp::Get {
                src,
                len,
                target,
                dst,
                completion,
            } => {
                self.stats.inc("gets_sent");
                // A get request is a small control message; payload flows
                // back as a put from the target.
                let msg = RxMessage {
                    origin: self.node,
                    injected_at: now,
                    seq: None,
                    corrupt: false,
                    kind: RxKind::GetRequest {
                        src,
                        len,
                        reply_dst: dst,
                        reply_notify: completion.map(|flag| Notify {
                            flag,
                            add: 1,
                            chain: None,
                        }),
                    },
                };
                self.send_remote(now, target, 16, msg, fabric)
            }
        }
    }

    /// Ship a non-loopback message to `target`, through the ARQ layer when
    /// it is enabled (sequence number, fault judgement, retry timer); the
    /// lossless path is the seed model's, unchanged.
    fn send_remote(
        &mut self,
        now: SimTime,
        target: NodeId,
        bytes: u64,
        msg: RxMessage,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        if !self.rel.enabled() {
            let timing = fabric.send_message(now, self.node, target, bytes);
            return vec![NicOutput::Remote {
                node: target,
                at: timing.last_arrival,
                ev: NicEvent::RxArrive(msg),
            }];
        }
        let queued = self
            .flow_queue
            .get(&target.0)
            .is_some_and(|q| !q.is_empty());
        if queued || !self.rel.may_send(target) {
            // Zero credit toward this target (or older sends already
            // waiting): stall the send until an ACK restores the grant.
            // Sequence numbers are allocated at transmit time, so the
            // queue's FIFO order keeps each pair's sequence space dense.
            self.stats.inc("credit_stalls");
            self.flow_queue
                .entry(target.0)
                .or_default()
                .push_back((bytes, msg));
            return Vec::new();
        }
        self.send_tracked_now(now, target, bytes, msg, fabric)
    }

    /// Allocate a sequence, hold for retransmission (consuming one credit
    /// grant), transmit, and arm the retry timer.
    fn send_tracked_now(
        &mut self,
        now: SimTime,
        target: NodeId,
        bytes: u64,
        mut msg: RxMessage,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        let seq = self.rel.alloc_seq(target);
        msg.seq = Some(seq);
        self.rel.hold(seq, target, bytes, msg.clone());
        let mut out = self.transmit_tracked(now, target, bytes, msg, fabric);
        out.push(NicOutput::Local {
            at: now + self.config.reliability.rto(1, bytes),
            ev: NicEvent::RetryTimer {
                target,
                seq,
                attempt: 1,
            },
        });
        out
    }

    /// Transmit queued sends toward `target` while credit lasts.
    fn drain_flow_queue(
        &mut self,
        now: SimTime,
        target: NodeId,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        let mut out = Vec::new();
        while self.rel.may_send(target) {
            let Some((bytes, msg)) = self
                .flow_queue
                .get_mut(&target.0)
                .and_then(VecDeque::pop_front)
            else {
                break;
            };
            self.stats.inc("credit_resumes");
            out.extend(self.send_tracked_now(now, target, bytes, msg, fabric));
        }
        if self
            .flow_queue
            .get(&target.0)
            .is_some_and(VecDeque::is_empty)
        {
            self.flow_queue.remove(&target.0);
        }
        out
    }

    /// One wire attempt of a tracked message: charge the fabric, judge the
    /// fault plan, and schedule the arrival (or not).
    fn transmit_tracked(
        &mut self,
        now: SimTime,
        target: NodeId,
        bytes: u64,
        mut msg: RxMessage,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        let (timing, verdict) = fabric.send_message_faulty(now, self.node, target, bytes);
        msg.injected_at = now; // each attempt re-stamps its wire-stage start
        let seq = msg.seq.expect("tracked messages carry a sequence");
        match verdict {
            Delivery::Dropped => {
                self.stats.inc("tx_dropped");
                self.note(now, NicNote::MessageDropped { seq, target });
                Vec::new()
            }
            Delivery::Corrupted => {
                msg.corrupt = true;
                self.stats.inc("tx_corrupted");
                self.note(now, NicNote::MessageCorrupted { seq, target });
                vec![NicOutput::Remote {
                    node: target,
                    at: timing.last_arrival,
                    ev: NicEvent::RxArrive(msg),
                }]
            }
            Delivery::Delivered => vec![NicOutput::Remote {
                node: target,
                at: timing.last_arrival,
                ev: NicEvent::RxArrive(msg),
            }],
        }
    }

    /// Acknowledge sequence `seq` back to `to`, advertising the
    /// reorder-buffer credits left for that origin. ACKs are
    /// fire-and-forget: a lost ACK just means the origin retransmits and
    /// we re-ACK.
    fn send_ack(
        &mut self,
        now: SimTime,
        to: NodeId,
        seq: u64,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        let bytes = self.config.reliability.ack_bytes;
        let credits = self.rel.rx_credits(to);
        let (timing, verdict) = fabric.send_message_faulty(now, self.node, to, bytes);
        self.stats.inc("acks_tx");
        if verdict != Delivery::Delivered {
            self.stats.inc("acks_lost");
            return Vec::new();
        }
        vec![NicOutput::Remote {
            node: to,
            at: timing.last_arrival,
            ev: NicEvent::RxArrive(RxMessage {
                origin: self.node,
                injected_at: now,
                seq: None,
                corrupt: false,
                kind: RxKind::Ack { seq, credits },
            }),
        }]
    }

    fn on_retry_timer(
        &mut self,
        now: SimTime,
        target: NodeId,
        seq: u64,
        attempt: u32,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        let decision = match self.rel.timer_fired(now, target, seq, attempt) {
            TimerVerdict::Stale => return Vec::new(),
            TimerVerdict::Retransmit(p) => Ok((p.target, p.bytes, p.msg.clone(), p.attempts)),
            TimerVerdict::Exhausted(f) => Err(f),
        };
        match decision {
            Ok((target, bytes, msg, attempts)) => {
                self.stats.inc("timeouts");
                self.stats.inc("retransmits");
                self.note(
                    now,
                    NicNote::Retransmitted {
                        seq,
                        attempt: attempts,
                        target,
                    },
                );
                let mut out = self.transmit_tracked(now, target, bytes, msg, fabric);
                out.push(NicOutput::Local {
                    at: now + self.config.reliability.rto(attempts, bytes),
                    ev: NicEvent::RetryTimer {
                        target,
                        seq,
                        attempt: attempts,
                    },
                });
                out
            }
            Err(failure) => {
                self.stats.inc("exhausted_retries");
                let mut out = self.cq_push(CqKind::Error, failure.seq, failure.bytes, now, mem);
                self.note(
                    now,
                    NicNote::DeliveryFailed {
                        seq,
                        target: failure.target,
                        attempts: failure.attempts,
                        cause: failure.cause,
                    },
                );
                // The dead message's credit grant will never be refreshed
                // by an ACK; release it so queued sends keep draining.
                self.rel.release_grant(failure.target);
                out.extend(self.drain_flow_queue(now, failure.target, fabric));
                out
            }
        }
    }

    /// The cluster's failure detector declared `peer` dead: abandon every
    /// pending (unACKed) message toward it immediately — each surfaces as a
    /// [`CqKind::Error`] entry and a [`NicNote::DeliveryFailed`] with cause
    /// [`DeliveryCause::PeerDead`] — instead of burning the remaining retry
    /// budget against a corpse. Credit grants toward the peer are released
    /// so unrelated queued work cannot wedge behind it. `culprit` is the
    /// injected component the detector blamed (stamped onto every
    /// failure). Idempotent: with nothing pending toward `peer` this does
    /// nothing.
    pub fn mark_peer_dead(
        &mut self,
        now: SimTime,
        peer: NodeId,
        culprit: Option<gtn_fabric::CrashComponent>,
        mem: &mut MemPool,
    ) -> Vec<NicOutput> {
        let failures = self.rel.fail_peer_dead(peer, now, culprit);
        let mut out = Vec::new();
        for f in &failures {
            self.stats.inc("peer_dead_failures");
            out.extend(self.cq_push(CqKind::Error, f.seq, f.bytes, now, mem));
            self.note(
                now,
                NicNote::DeliveryFailed {
                    seq: f.seq,
                    target: f.target,
                    attempts: f.attempts,
                    cause: f.cause,
                },
            );
            self.rel.release_grant(f.target);
        }
        out
    }

    // ---- completion queue (bounded discipline) ----------------------------

    /// True when the bounded CQ cannot accept another commit right now —
    /// either the ring is full or older commits are already parked
    /// (ordering). Always false with an unbounded (or absent) CQ.
    fn cq_blocked(&self, mem: &MemPool) -> bool {
        if self.config.cq_capacity.is_none() {
            return false;
        }
        let Some(cq) = self.cq else { return false };
        !self.cq_waiting.is_empty() || cq.depth(mem) >= cq.capacity
    }

    /// Record a completion. Unbounded CQs push unconditionally (the seed
    /// discipline: overwrite on overrun, detected by the consumer).
    /// Bounded CQs never overwrite: entries that find the ring full go to
    /// a backlog flushed by the drain consumer. May return a scheduled
    /// [`NicEvent::CqDrain`].
    fn cq_push(
        &mut self,
        kind: CqKind,
        tag: u64,
        bytes: u64,
        now: SimTime,
        mem: &mut MemPool,
    ) -> Vec<NicOutput> {
        let Some(cq) = self.cq else {
            return Vec::new();
        };
        if self.config.cq_capacity.is_none() {
            cq.push(mem, kind, tag, bytes, now);
            self.stats.inc("cq_entries");
            return Vec::new();
        }
        if cq.try_push(mem, kind, tag, bytes, now).is_some() {
            self.stats.inc("cq_entries");
        } else {
            self.stats.inc("cq_stalls");
            self.cq_backlog.push_back((now, kind, tag, bytes));
        }
        self.maybe_schedule_cq_drain(now).into_iter().collect()
    }

    /// Arm the modeled host consumer if the bounded CQ has work and no
    /// drain is already scheduled. `cq_drain_ns == 0` models a consumer
    /// that never drains: the ring stays full and the run ends in a
    /// resource-starvation stall.
    fn maybe_schedule_cq_drain(&mut self, now: SimTime) -> Option<NicOutput> {
        if self.cq_drain_scheduled
            || self.config.cq_drain_ns == 0
            || self.config.cq_capacity.is_none()
            || self.cq.is_none()
        {
            return None;
        }
        self.cq_drain_scheduled = true;
        Some(NicOutput::Local {
            at: now + SimDuration::from_ns(self.config.cq_drain_ns),
            ev: NicEvent::CqDrain,
        })
    }

    /// The modeled host consumer retires one CQ entry, then the freed
    /// slots are refilled from the entry backlog and parked commits, in
    /// that (FIFO) order.
    fn on_cq_drain(
        &mut self,
        now: SimTime,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        self.cq_drain_scheduled = false;
        let Some(cq) = self.cq else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if cq.depth(mem) > 0 {
            cq.consume_to(mem, cq.consumed(mem) + 1);
            self.stats.inc("cq_drained");
        }
        while cq.depth(mem) < cq.capacity {
            let Some((at, kind, tag, bytes)) = self.cq_backlog.pop_front() else {
                break;
            };
            cq.try_push(mem, kind, tag, bytes, at)
                .expect("slot free: depth checked");
            self.stats.inc("cq_entries");
        }
        while cq.depth(mem) < cq.capacity && self.cq_backlog.is_empty() {
            let Some((parked_at, msg)) = self.cq_waiting.pop_front() else {
                break;
            };
            let waited = now - parked_at;
            self.stats.record("stage_cq_stall", waited);
            self.note(now, NicNote::CqStalled { waited });
            out.extend(self.commit_rx(now, msg, mem, fabric));
        }
        if cq.depth(mem) > 0 || !self.cq_backlog.is_empty() || !self.cq_waiting.is_empty() {
            out.extend(self.maybe_schedule_cq_drain(now));
        }
        out
    }

    fn on_dma_done(
        &mut self,
        now: SimTime,
        id: OpId,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        let inflight = self
            .inflight
            .remove(&id.0)
            .unwrap_or_else(|| panic!("unknown in-flight op {id:?}"));
        // Injection stage: DMA-engine wait + setup + payload read.
        self.stats.record("stage_injection", now - inflight.started);
        let NetOp::Put {
            src,
            len,
            target,
            dst,
            notify,
            completion,
        } = inflight.op
        else {
            unreachable!("only puts enter the DMA engine");
        };
        // Snapshot the payload: from here on the app may reuse the buffer.
        let payload = Bytes::copy_from_slice(mem.read(src, len));
        if let Some(flag) = completion {
            // Local completion (§4.2.4): the send buffer is reusable.
            mem.fetch_add_u64(flag, 1);
            self.stats.inc("local_completions");
        }
        let mut pre = self.cq_push(CqKind::SendComplete, 0, len, now, mem);
        self.stats.inc("puts_injected");
        self.stats.add("bytes_tx", len);
        let msg = RxMessage {
            origin: self.node,
            injected_at: now,
            seq: None,
            corrupt: false,
            kind: RxKind::Put {
                dst,
                payload,
                notify,
            },
        };
        if target == self.node {
            // Loopback never crosses the fabric and never faults.
            let timing = fabric.send_message(now, self.node, target, len);
            pre.push(NicOutput::Local {
                at: timing.last_arrival,
                ev: NicEvent::RxArrive(msg),
            });
        } else {
            pre.extend(self.send_remote(now, target, len, msg, fabric));
        }
        pre
    }

    // ---- target side ------------------------------------------------------

    fn on_rx_arrive(
        &mut self,
        now: SimTime,
        msg: RxMessage,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        if let RxKind::Ack { seq, credits } = msg.kind {
            // Sender side: retire the pending message. The ACK's origin is
            // the node that committed it — the key into our per-target
            // sequence space. Stale ACKs (already retired by an earlier
            // duplicate's ACK) are harmless.
            if self.rel.ack(msg.origin, seq) {
                self.stats.inc("acks_rx");
            } else {
                self.stats.inc("acks_stale");
            }
            // Flow control: refresh this target's grant from the
            // advertised credits and resume any credit-stalled sends.
            self.rel.refresh_grant(msg.origin, credits);
            return self.drain_flow_queue(now, msg.origin, fabric);
        }
        if msg.corrupt {
            // CRC failure: discard without ACK; the origin's retry timer
            // will replay the message.
            self.stats.inc("rx_corrupt_discarded");
            return Vec::new();
        }
        self.stats.inc("rx_messages");
        // Wire stage: injection on the origin to last-packet arrival here.
        self.stats.record("stage_wire", now - msg.injected_at);
        let payload_len = match &msg.kind {
            RxKind::Put { payload, .. } => payload.len() as u64,
            RxKind::GetRequest { .. } => 0,
            RxKind::Ack { .. } => unreachable!("ACKs are handled above"),
        };
        // Payload commit cost: fixed processing plus the memory-write time.
        let done = now
            + SimDuration::from_ns(self.config.rx_process_ns)
            + SimDuration::for_bytes_at_gbps(payload_len, self.config.dma_gbps * 8.0);
        // Commit stage: receive processing + payload write to memory.
        self.stats.record("stage_commit", done - now);
        vec![NicOutput::Local {
            at: done,
            ev: NicEvent::RxDone(msg),
        }]
    }

    fn on_rx_done(
        &mut self,
        now: SimTime,
        msg: RxMessage,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        let mut outputs = Vec::new();
        if let Some(seq) = msg.seq {
            // ACK every accepted arrival — a duplicate means the origin
            // missed the first ACK — but commit strictly in per-origin
            // sequence order, so a retransmit that lands late can never
            // clobber fresher data or fire a notify for the wrong payload.
            // Shed arrivals (beyond the flow-control window) are the one
            // exception: no ACK, so the origin retransmits them later.
            let origin = msg.origin;
            let verdict = self.rel.accept(origin, seq, msg);
            if verdict == Accept::Shed {
                self.stats.inc("rx_shed");
                return outputs;
            }
            outputs.extend(self.send_ack(now, origin, seq, fabric));
            match verdict {
                Accept::Duplicate => {
                    // The payload was already committed (or is already
                    // parked) and any notify / chained trigger already ran
                    // or will run exactly once. Trigger entries are
                    // one-shot (§3.1): a retransmit replays the wire
                    // operation, never the trigger match.
                    self.stats.inc("rx_duplicates");
                }
                Accept::Held => {
                    // Ahead of the expected sequence: parked until the gap
                    // fills. The origin's retry timer is re-sending the
                    // missing message.
                    self.stats.inc("rx_held");
                }
                Accept::Deliver(run) => {
                    for m in run {
                        let out = self.commit_or_park(now, m, mem, fabric);
                        outputs.extend(out);
                    }
                }
                Accept::Shed => unreachable!("handled above"),
            }
            return outputs;
        }
        outputs.extend(self.commit_or_park(now, msg, mem, fabric));
        outputs
    }

    /// Commit a received message unless the bounded CQ is full, in which
    /// case the commit parks (the `cq_stall` stage) until the consumer
    /// frees a slot.
    fn commit_or_park(
        &mut self,
        now: SimTime,
        msg: RxMessage,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        if self.cq_blocked(mem) {
            self.stats.inc("cq_stalls");
            self.cq_waiting.push_back((now, msg));
            return self.maybe_schedule_cq_drain(now).into_iter().collect();
        }
        self.commit_rx(now, msg, mem, fabric)
    }

    /// Commit one received message's effects: payload write, CQ entry,
    /// notify flag, chained trigger, or get service.
    fn commit_rx(
        &mut self,
        now: SimTime,
        msg: RxMessage,
        mem: &mut MemPool,
        fabric: &mut Fabric,
    ) -> Vec<NicOutput> {
        match msg.kind {
            RxKind::Put {
                dst,
                payload,
                notify,
            } => {
                self.stats.add("bytes_rx", payload.len() as u64);
                mem.write(dst, &payload);
                let mut out = self.cq_push(CqKind::RecvComplete, 0, payload.len() as u64, now, mem);
                if let Some(n) = notify {
                    // Flag is written flag_write_ns later, but the value must
                    // be visible when any poller at that instant reads it;
                    // commit now and account the cost in stats only.
                    mem.fetch_add_u64(n.flag, n.add);
                    self.stats.inc("notifies");
                    if let Some(tag) = n.chain {
                        // Portals-4 counter chaining ([40]): the arrival
                        // itself progresses this NIC's trigger list — no
                        // CPU, no GPU, no kernel boundary.
                        self.stats.inc("chained_triggers");
                        out.push(NicOutput::Local {
                            at: now + SimDuration::from_ns(self.config.flag_write_ns),
                            ev: NicEvent::TriggerWrite(tag),
                        });
                    }
                }
                out
            }
            RxKind::GetRequest {
                src,
                len,
                reply_dst,
                reply_notify,
            } => {
                self.stats.inc("gets_served");
                // Serve the get: put the requested bytes back to the origin.
                let reply = NetOp::Put {
                    src,
                    len,
                    target: msg.origin,
                    dst: reply_dst,
                    notify: reply_notify,
                    completion: None,
                };
                self.exec_op(now, reply, mem, fabric)
            }
            RxKind::Ack { .. } => unreachable!("ACKs never reach RxDone"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_fabric::FabricConfig;
    use gtn_sim::Engine;

    /// Minimal two-node harness: routes NIC outputs through a real engine.
    struct Harness {
        nics: Vec<Nic>,
        mem: MemPool,
        fabric: Fabric,
        engine: Engine<(usize, NicEvent)>,
    }

    impl Harness {
        fn new(n: usize) -> Self {
            Self::new_with(n, NicConfig::default(), FabricConfig::default())
        }

        /// Harness with explicit configs (reliability / fault-injection
        /// tests).
        fn new_with(n: usize, nic: NicConfig, fabric: FabricConfig) -> Self {
            Harness {
                nics: (0..n)
                    .map(|i| Nic::new(NodeId(i as u32), nic.clone()))
                    .collect(),
                mem: MemPool::new(n),
                fabric: Fabric::new(n, fabric),
                engine: Engine::new(),
            }
        }

        fn doorbell(&mut self, node: usize, cmd: NicCommand) {
            let d = self.nics[node].doorbell_delay();
            self.engine
                .schedule_after(d, (node, NicEvent::Doorbell(cmd)));
        }

        fn trigger(&mut self, node: usize, tag: Tag) {
            let d = self.nics[node].trigger_route_delay();
            self.engine
                .schedule_after(d, (node, NicEvent::TriggerWrite(tag)));
        }

        fn run(&mut self) -> SimTime {
            let nics = &mut self.nics;
            let mem = &mut self.mem;
            let fabric = &mut self.fabric;
            self.engine.run(|eng, (node, ev)| {
                for out in nics[node].handle(eng.now(), ev, mem, fabric) {
                    match out {
                        NicOutput::Local { at, ev } => eng.schedule_at(at, (node, ev)),
                        NicOutput::Remote { node, at, ev } => {
                            eng.schedule_at(at, (node.index(), ev))
                        }
                    }
                }
            });
            self.engine.now()
        }
    }

    fn put(h: &mut Harness, len: u64) -> (Addr, Addr, Addr, Addr) {
        let src = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), len.max(8), "src"));
        let dst = Addr::base(NodeId(1), h.mem.alloc(NodeId(1), len.max(8), "dst"));
        let comp = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), 8, "comp"));
        let flag = Addr::base(NodeId(1), h.mem.alloc(NodeId(1), 8, "flag"));
        (src, dst, comp, flag)
    }

    fn put_op(src: Addr, dst: Addr, len: u64, comp: Addr, flag: Addr) -> NetOp {
        NetOp::Put {
            src,
            len,
            target: NodeId(1),
            dst,
            notify: Some(Notify {
                flag,
                add: 1,
                chain: None,
            }),
            completion: Some(comp),
        }
    }

    #[test]
    fn immediate_put_delivers_payload_and_flags() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 64);
        h.mem.write(src, &[0xAB; 64]);
        h.doorbell(0, NicCommand::Put(put_op(src, dst, 64, comp, flag)));
        let end = h.run();
        assert_eq!(h.mem.read(dst, 64), &[0xAB; 64]);
        assert_eq!(h.mem.read_u64(flag), 1, "target notify");
        assert_eq!(h.mem.read_u64(comp), 1, "local completion");
        // Sanity on the latency scale: sub-microsecond for 64 B.
        assert!(end < SimTime::from_us(2), "end {end}");
        assert!(end > SimTime::from_ns(500), "end {end}");
        assert_eq!(h.nics[1].stats().counter("rx_messages"), 1);
        assert_eq!(h.nics[0].stats().counter("puts_injected"), 1);
    }

    #[test]
    fn triggered_put_waits_for_tag_write() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 64);
        h.mem.write(src, &[7; 64]);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(3),
                threshold: 1,
                op: put_op(src, dst, 64, comp, flag),
            },
        );
        // Run with no trigger: nothing must be delivered.
        h.run();
        assert_eq!(h.mem.read_u64(flag), 0);
        assert_eq!(h.nics[0].triggers().active(), 1);
        // Now the GPU writes the tag.
        h.trigger(0, Tag(3));
        h.run();
        assert_eq!(h.mem.read(dst, 64), &[7; 64]);
        assert_eq!(h.mem.read_u64(flag), 1);
        assert_eq!(h.nics[0].stats().counter("fired_at_trigger"), 1);
        assert!(h.nics[0].errors().is_empty());
    }

    #[test]
    fn stage_histograms_cover_the_message_pipeline() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 64);
        h.mem.write(src, &[1; 64]);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(7),
                threshold: 1,
                op: put_op(src, dst, 64, comp, flag),
            },
        );
        h.run();
        h.trigger(0, Tag(7));
        h.run();
        // Initiator-side stages.
        for stage in ["stage_doorbell", "stage_trigger_match", "stage_injection"] {
            let hist = h.nics[0]
                .stats()
                .histogram(stage)
                .unwrap_or_else(|| panic!("missing {stage}"));
            assert_eq!(hist.count(), 1, "{stage}");
        }
        // Target-side stages.
        for stage in ["stage_wire", "stage_commit"] {
            let hist = h.nics[1]
                .stats()
                .histogram(stage)
                .unwrap_or_else(|| panic!("missing {stage}"));
            assert_eq!(hist.count(), 1, "{stage}");
            assert!(hist.mean().as_ps() > 0, "{stage} must have real latency");
        }
        // The wire stage is bounded below by the fabric's base latency.
        let wire = h.nics[1].stats().histogram("stage_wire").unwrap();
        assert!(
            wire.mean() >= SimDuration::from_ns(100),
            "{:?}",
            wire.mean()
        );
    }

    #[test]
    fn retransmit_restamps_wire_stage_per_attempt() {
        // With loss, the delivered attempt's wire time must be measured
        // from ITS injection, not the first attempt's — so the wire-stage
        // mean stays at the one-attempt scale even after retries.
        let mut h = Harness::new_with(2, reliable_nic(8), lossy_fabric(12, 0.4));
        let (src, dst, comp, flag) = put(&mut h, 64);
        h.mem.write(src, &[2; 64]);
        h.doorbell(0, NicCommand::Put(put_op(src, dst, 64, comp, flag)));
        h.run();
        assert_eq!(h.mem.read_u64(flag), 1);
        assert!(
            h.nics[0].stats().counter("retransmits") > 0,
            "loss must retry"
        );
        let wire = h.nics[1]
            .stats()
            .histogram("stage_wire")
            .expect("wire stage");
        // One-attempt wire time is well under 10us; a first-attempt stamp
        // would include the >=2us RTO backoff.
        assert!(wire.max() < SimDuration::from_us(2), "{:?}", wire.max());
    }

    #[test]
    fn relaxed_sync_trigger_first_post_later() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 32);
        h.mem.write(src, &[1; 32]);
        // GPU triggers before the CPU post (§3.2).
        h.trigger(0, Tag(10));
        h.run();
        assert_eq!(h.nics[0].triggers().early_allocations(), 1);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(10),
                threshold: 1,
                op: put_op(src, dst, 32, comp, flag),
            },
        );
        h.run();
        assert_eq!(h.mem.read_u64(flag), 1);
        assert_eq!(h.nics[0].stats().counter("fired_at_post"), 1);
    }

    #[test]
    fn threshold_counts_across_many_trigger_writes() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 16);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(0),
                threshold: 8,
                op: put_op(src, dst, 16, comp, flag),
            },
        );
        h.run();
        for _ in 0..7 {
            h.trigger(0, Tag(0));
        }
        h.run();
        assert_eq!(h.mem.read_u64(flag), 0, "7 of 8 writes: not yet");
        h.trigger(0, Tag(0));
        h.run();
        assert_eq!(h.mem.read_u64(flag), 1);
    }

    #[test]
    fn send_buffer_snapshot_makes_local_completion_safe() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 64);
        h.mem.write(src, &[0x11; 64]);
        h.doorbell(0, NicCommand::Put(put_op(src, dst, 64, comp, flag)));
        // Drive until local completion, then trash the buffer before
        // delivery completes.
        let mem_comp = comp;
        let nics = &mut h.nics;
        let mem = &mut h.mem;
        let fabric = &mut h.fabric;
        let mut trashed = false;
        h.engine.run(|eng, (node, ev)| {
            for out in nics[node].handle(eng.now(), ev, mem, fabric) {
                match out {
                    NicOutput::Local { at, ev } => eng.schedule_at(at, (node, ev)),
                    NicOutput::Remote { node, at, ev } => eng.schedule_at(at, (node.index(), ev)),
                }
            }
            if !trashed && mem.read_u64(mem_comp) == 1 {
                mem.write(src, &[0xFF; 64]);
                trashed = true;
            }
        });
        assert!(trashed, "local completion observed");
        assert_eq!(h.mem.read(dst, 64), &[0x11; 64], "snapshot, not live read");
    }

    #[test]
    fn get_round_trip_fetches_remote_bytes() {
        let mut h = Harness::new(2);
        let remote = Addr::base(NodeId(1), h.mem.alloc(NodeId(1), 64, "remote"));
        let local = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), 64, "local"));
        let comp = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), 8, "comp"));
        h.mem.write(remote, &[0x5A; 64]);
        h.doorbell(
            0,
            NicCommand::Put(NetOp::Get {
                src: remote,
                len: 64,
                target: NodeId(1),
                dst: local,
                completion: Some(comp),
            }),
        );
        h.run();
        assert_eq!(h.mem.read(local, 64), &[0x5A; 64]);
        assert_eq!(h.mem.read_u64(comp), 1);
        assert_eq!(h.nics[1].stats().counter("gets_served"), 1);
    }

    #[test]
    fn fifo_storm_drains_in_order_and_completely() {
        let mut h = Harness::new(2);
        let (src, dst, comp, flag) = put(&mut h, 8);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(0),
                threshold: 64,
                op: put_op(src, dst, 8, comp, flag),
            },
        );
        h.run();
        // 64 near-simultaneous writes (a wavefront's worth).
        for _ in 0..64 {
            h.trigger(0, Tag(0));
        }
        h.run();
        assert_eq!(h.mem.read_u64(flag), 1);
        assert_eq!(h.nics[0].stats().counter("trigger_writes"), 64);
        assert!(h.nics[0].errors().is_empty());
    }

    #[test]
    fn capacity_overflow_spills_to_host_memory_not_error() {
        let mut h = Harness::new(2);
        h.nics[0] = Nic::new(
            NodeId(0),
            NicConfig {
                lookup: crate::lookup::LookupKind::Associative { ways: 2 },
                ..NicConfig::default()
            },
        );
        // Three early triggers with distinct tags: the third exceeds the
        // CAM and spills to the host-memory overflow table — no error.
        h.trigger(0, Tag(1));
        h.trigger(0, Tag(2));
        h.trigger(0, Tag(3));
        h.run();
        assert!(h.nics[0].errors().is_empty());
        assert_eq!(h.nics[0].stats().counter("trigger_errors"), 0);
        assert_eq!(h.nics[0].stats().counter("trigger_spills"), 1);
        assert_eq!(h.nics[0].triggers().overflow_len(), 1);
        // The spilled entry still matches; a post over it fires normally
        // and the retirement path keeps promotion counters in sync.
        let (src, dst, comp, flag) = put(&mut h, 16);
        h.mem.write(src, &[8; 16]);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(1),
                threshold: 1,
                op: put_op(src, dst, 16, comp, flag),
            },
        );
        h.run();
        assert_eq!(h.mem.read_u64(flag), 1);
        assert_eq!(h.nics[0].stats().counter("trigger_promotions"), 1);
    }

    #[test]
    fn exhausted_cam_and_overflow_is_recorded_not_fatal() {
        let mut h = Harness::new(2);
        h.nics[0] = Nic::new(
            NodeId(0),
            NicConfig {
                lookup: crate::lookup::LookupKind::Associative { ways: 1 },
                trigger_overflow_capacity: 1,
                ..NicConfig::default()
            },
        );
        h.trigger(0, Tag(1));
        h.trigger(0, Tag(2)); // spills
        h.trigger(0, Tag(3)); // both tiers full: rejected
        h.run();
        assert_eq!(h.nics[0].errors().len(), 1);
        assert_eq!(h.nics[0].stats().counter("trigger_errors"), 1);
    }

    fn bounded_cq_nic(capacity: u64, drain_ns: u64) -> NicConfig {
        NicConfig {
            cq_capacity: Some(capacity),
            cq_drain_ns: drain_ns,
            ..NicConfig::default()
        }
    }

    #[test]
    fn bounded_cq_backpressure_parks_commits_and_recovers() {
        // A 1-slot CQ on the receiver with a slow consumer: a burst of
        // puts must all still deliver (commits park instead of
        // overwriting), with the stall accounted.
        let mut h = Harness::new(2);
        h.nics[1] = Nic::new(NodeId(1), bounded_cq_nic(1, 400));
        let cq = CqDesc::alloc(&mut h.mem, NodeId(1), 1);
        h.nics[1].attach_cq(cq);
        let (src, dst, comp, flag) = put(&mut h, 32);
        h.mem.write(src, &[6; 32]);
        for _ in 0..4 {
            h.doorbell(0, NicCommand::Put(put_op(src, dst, 32, comp, flag)));
        }
        h.run();
        assert_eq!(h.mem.read_u64(flag), 4, "every put commits eventually");
        assert!(
            h.nics[1].stats().counter("cq_stalls") > 0,
            "a 1-slot ring under a 4-put burst must stall"
        );
        assert_eq!(h.nics[1].cq_parked(), 0, "drained clean at quiescence");
        let stall = h.nics[1]
            .stats()
            .histogram("stage_cq_stall")
            .expect("stall stage recorded");
        assert!(stall.mean().as_ps() > 0);
    }

    #[test]
    fn starved_cq_consumer_parks_forever_without_panicking() {
        // cq_drain_ns = 0 models a consumer that never drains: commits
        // park permanently and the run ends quiescent (the cluster layer
        // classifies this as resource starvation) — but nothing panics
        // and nothing is overwritten.
        let mut h = Harness::new(2);
        h.nics[1] = Nic::new(NodeId(1), bounded_cq_nic(1, 0));
        let cq = CqDesc::alloc(&mut h.mem, NodeId(1), 1);
        h.nics[1].attach_cq(cq);
        let (src, dst, comp, flag) = put(&mut h, 32);
        h.mem.write(src, &[6; 32]);
        for _ in 0..3 {
            h.doorbell(0, NicCommand::Put(put_op(src, dst, 32, comp, flag)));
        }
        h.run();
        assert_eq!(h.mem.read_u64(flag), 1, "only the first commit fit");
        assert_eq!(h.nics[1].cq_parked(), 2, "the rest are parked, not lost");
        assert_eq!(cq.head(&h.mem), 1, "never overwritten");
    }

    #[test]
    fn zero_credit_sends_queue_and_resume_on_ack() {
        // Window of 1: the second and third puts must wait for the first
        // ACK, then drain in order. Everything still delivers.
        let nic = NicConfig {
            reliability: crate::reliability::ReliabilityConfig::bounded(1),
            ..NicConfig::default()
        };
        let mut h = Harness::new_with(2, nic, FabricConfig::default());
        let (src, dst, comp, flag) = put(&mut h, 32);
        h.mem.write(src, &[7; 32]);
        for _ in 0..3 {
            h.doorbell(0, NicCommand::Put(put_op(src, dst, 32, comp, flag)));
        }
        h.run();
        assert_eq!(h.mem.read_u64(flag), 3, "all deliveries complete");
        assert!(
            h.nics[0].stats().counter("credit_stalls") > 0,
            "window 1 must stall a 3-put burst"
        );
        assert_eq!(
            h.nics[0].stats().counter("credit_stalls"),
            h.nics[0].stats().counter("credit_resumes"),
            "every stalled send eventually resumed"
        );
        assert_eq!(h.nics[0].flow_queued(), 0);
        assert!(h.nics[0].pending_retries().is_empty());
    }

    #[test]
    fn bounded_window_survives_loss_with_identical_payloads() {
        // Seeded loss + window 2: the ARQ must still deliver the exact
        // payload, shedding over-window arrivals without ACKing them.
        let nic = NicConfig {
            reliability: crate::reliability::ReliabilityConfig {
                window: 2,
                ..crate::reliability::ReliabilityConfig::on()
            },
            ..NicConfig::default()
        };
        let mut h = Harness::new_with(2, nic, lossy_fabric(12, 0.4));
        let (src, dst, comp, flag) = put(&mut h, 64);
        h.mem.write(src, &[0x5A; 64]);
        for _ in 0..6 {
            h.doorbell(0, NicCommand::Put(put_op(src, dst, 64, comp, flag)));
        }
        h.run();
        assert_eq!(h.mem.read(dst, 64), &[0x5A; 64]);
        assert_eq!(h.mem.read_u64(flag), 6, "all six puts committed");
        assert!(h.nics[0].delivery_failures().is_empty());
        assert!(h.nics[0].pending_retries().is_empty());
        assert_eq!(h.nics[0].flow_queued(), 0);
    }

    #[test]
    fn self_put_loops_back() {
        let mut h = Harness::new(2);
        let src = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), 32, "src"));
        let dst = Addr::base(NodeId(0), h.mem.alloc(NodeId(0), 32, "dst"));
        h.mem.write(src, &[3; 32]);
        h.doorbell(
            0,
            NicCommand::Put(NetOp::Put {
                src,
                len: 32,
                target: NodeId(0),
                dst,
                notify: None,
                completion: None,
            }),
        );
        h.run();
        assert_eq!(h.mem.read(dst, 32), &[3; 32]);
    }

    fn reliable_nic(max_retries: u32) -> NicConfig {
        NicConfig {
            reliability: crate::reliability::ReliabilityConfig {
                max_retries,
                ..crate::reliability::ReliabilityConfig::on()
            },
            ..NicConfig::default()
        }
    }

    fn lossy_fabric(seed: u64, loss: f64) -> FabricConfig {
        FabricConfig {
            faults: gtn_fabric::FaultConfig::loss(seed, loss),
            ..FabricConfig::default()
        }
    }

    #[test]
    fn lossy_triggered_put_retransmits_until_delivered() {
        // Heavy seeded loss: the ARQ layer must carry the put through, and
        // the trigger entry must fire exactly once — retransmits replay the
        // wire op, they never re-arm the (one-shot, §3.1) trigger match.
        let mut h = Harness::new_with(2, reliable_nic(8), lossy_fabric(12, 0.4));
        let (src, dst, comp, flag) = put(&mut h, 64);
        h.mem.write(src, &[0x5A; 64]);
        h.doorbell(
            0,
            NicCommand::TriggeredPut {
                tag: Tag(3),
                threshold: 1,
                op: put_op(src, dst, 64, comp, flag),
            },
        );
        h.run(); // register the entry first, then fire it
        h.trigger(0, Tag(3));
        h.run();
        assert_eq!(h.mem.read(dst, 64), &[0x5A; 64]);
        assert_eq!(
            h.mem.read_u64(flag),
            1,
            "notify exactly once despite duplicates"
        );
        assert_eq!(h.nics[0].stats().counter("fired_at_trigger"), 1, "one-shot");
        assert!(
            h.nics[0].stats().counter("retransmits") > 0,
            "seed 12 at 40% loss must force at least one retransmit"
        );
        assert!(h.nics[0].delivery_failures().is_empty());
        assert!(h.nics[0].pending_retries().is_empty(), "everything acked");
    }

    #[test]
    fn dead_link_exhausts_retries_and_posts_cq_error() {
        // 100% loss: no attempt can succeed. The send must not hang —
        // after 1 + max_retries attempts the NIC abandons the message,
        // records a DeliveryFailure, and posts a CqKind::Error completion.
        let mut h = Harness::new_with(2, reliable_nic(3), lossy_fabric(1, 1.0));
        let (src, dst, comp, flag) = put(&mut h, 64);
        let cq = CqDesc::alloc(&mut h.mem, NodeId(0), 8);
        h.nics[0].attach_cq(cq);
        h.mem.write(src, &[1; 64]);
        h.doorbell(0, NicCommand::Put(put_op(src, dst, 64, comp, flag)));
        h.run();

        assert_eq!(h.mem.read_u64(flag), 0, "nothing ever delivered");
        let failures = h.nics[0].delivery_failures().to_vec();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].attempts, 4, "1 original + 3 retries");
        assert_eq!(failures[0].target, NodeId(1));
        assert_eq!(h.nics[0].stats().counter("exhausted_retries"), 1);
        assert!(
            h.nics[0].pending_retries().is_empty(),
            "nothing left in flight"
        );
        let entries = cq.drain_from(&h.mem, 0);
        assert!(
            entries
                .iter()
                .any(|e| e.kind == CqKind::Error && e.tag == failures[0].seq),
            "CQ must carry the error completion: {entries:?}"
        );
    }

    #[test]
    fn reliability_off_matches_lossless_wire_exactly() {
        // Faults configured but the ARQ layer disabled: the NIC never
        // routes through the faulty path, so timing and stats are identical
        // to a run with no faults at all (the seed's exact behavior).
        let run_one = |fabric: FabricConfig| {
            let mut h = Harness::new_with(2, NicConfig::default(), fabric);
            let (src, dst, comp, flag) = put(&mut h, 256);
            h.mem.write(src, &[9; 256]);
            h.doorbell(0, NicCommand::Put(put_op(src, dst, 256, comp, flag)));
            let end = h.run();
            (end, h.mem.read(dst, 256).to_vec())
        };
        let (end_clean, data_clean) = run_one(FabricConfig::default());
        let (end_faulty, data_faulty) = run_one(lossy_fabric(42, 0.9));
        assert_eq!(
            end_clean, end_faulty,
            "disabled ARQ must not consult the fault plan"
        );
        assert_eq!(data_clean, data_faulty);
    }
}
