//! End-to-end reliability: sequence numbers, ACKs, retransmit timers with
//! exponential backoff, and a bounded retry budget.
//!
//! The paper's fabric is lossless, so the seed model could treat every
//! injected message as delivered. Once the fabric can drop or corrupt
//! messages (see `gtn_fabric::faults`), the NIC needs an ARQ layer or any
//! loss becomes a silent hang: GPU-TN's whole premise is kernels blocking on
//! notification flags that only message arrivals bump.
//!
//! Protocol (selective-repeat ARQ with in-order commit, the RC-queue-pair
//! contract RDMA software is written against):
//!
//! - Every non-loopback message carries a sequence number from a
//!   per-`(sender, target)` space, so each directed pair sees the dense
//!   stream 0, 1, 2, …
//! - The receiver ACKs every arrival — including duplicates, which mean
//!   the sender missed the first ACK — but *commits* strictly in sequence
//!   order per origin. An arrival past the expected sequence is held in a
//!   reorder buffer until the gap fills. Without this, a retransmitted
//!   halo put can land *after* the next iteration's put to the same
//!   buffer: the notify counter advances for the wrong payload and the
//!   stale retransmit then overwrites the fresh data — a silent wrong
//!   answer, not a hang. In-order commit makes loss invisible to the
//!   flag-polling programming model (§4.2) except in time.
//! - Duplicates do **not** re-run notifies or chained triggers: a trigger
//!   entry that fired stays fired (§3.1 one-shot semantics); the retry
//!   replays the *wire* operation only.
//! - The sender holds the payload snapshot until ACKed. A retransmit timer
//!   (exponential backoff, capped) re-sends on expiry; after
//!   `max_retries` unacknowledged sends the message is abandoned: a
//!   [`crate::cq::CqKind::Error`] completion is pushed and a delivery
//!   failure is recorded for the cluster's stall report.
//!
//! ### Bounded memory: window + credits
//!
//! The seed ARQ grows without bound in two places: the sender's pending
//! table and the receiver's reorder buffer. With
//! [`ReliabilityConfig::window`] set to `W > 0` both get hard bounds:
//!
//! - The receiver only buffers arrivals with `seq < expected + W`;
//!   anything further ahead is **shed** ([`Accept::Shed`]) — not ACKed,
//!   not buffered — so the sender's retransmit timer replays it later.
//!   The reorder buffer thus never holds more than `W` entries per
//!   origin.
//! - Every ACK advertises **credits** = `W − held(origin)`, the room left
//!   in the reorder buffer. The sender keeps a per-target *grant*: each
//!   newly tracked message consumes one grant, and each ACK refreshes the
//!   grant to `credits − still-unACKed messages toward that target`. At
//!   zero grant the NIC queues new sends instead of transmitting
//!   (stall-and-back-off) until an ACK restores credit.
//!
//! Deadlock-freedom: a zero grant implies unACKed messages in flight, and
//! every one of those has a live retransmit timer; receivers ACK every
//! non-shed arrival including duplicates, so an ACK (and with it a grant
//! refresh) always eventually arrives. `W = 0` (the default) keeps the
//! unbounded seed behaviour bit-for-bit.
//!
//! This module is pure bookkeeping — [`crate::nic::Nic`] drives it and owns
//! all timing/fabric effects — so budget and backoff arithmetic is unit
//! testable in isolation.

use gtn_fabric::CrashComponent;
use gtn_mem::NodeId;
use gtn_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Reliability-layer parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReliabilityConfig {
    /// Master switch. Disabled (the default) keeps the NIC's wire path
    /// byte-identical to the lossless model: no sequence numbers, no ACK
    /// traffic, no timers.
    pub enabled: bool,
    /// Fixed component of the first retransmit timeout, nanoseconds. Must
    /// cover the fixed round-trip (links, switch, rx processing, ACK).
    pub base_timeout_ns: u64,
    /// Payload-proportional timeout component, picoseconds per byte. Covers
    /// serialization of large messages (a byte takes 80 ps at 100 Gbps; the
    /// default leaves ~5x slack for contention).
    pub per_byte_ps: u64,
    /// Backoff cap, nanoseconds. The effective cap never drops below the
    /// size-dependent base timeout, so huge transfers still get a sane RTO.
    pub max_timeout_ns: u64,
    /// Retry budget: maximum *additional* sends after the first. Once the
    /// budget is spent and the timer expires again, delivery fails.
    pub max_retries: u32,
    /// Wire size of an ACK control message, bytes.
    pub ack_bytes: u64,
    /// Flow-control window, messages per directed pair. `0` (default)
    /// disables flow control: unbounded reorder buffer and no credit
    /// gating, exactly the seed behaviour. `W > 0` bounds the receiver's
    /// reorder buffer to `W` entries per origin and gates new sends on
    /// credits advertised in ACKs (see the module docs).
    pub window: u64,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            enabled: false,
            base_timeout_ns: 10_000,
            per_byte_ps: 400,
            max_timeout_ns: 1_000_000,
            max_retries: 8,
            ack_bytes: 16,
            window: 0,
        }
    }
}

impl ReliabilityConfig {
    /// Enabled with default timing — the standard way to switch ARQ on.
    pub fn on() -> Self {
        ReliabilityConfig {
            enabled: true,
            ..ReliabilityConfig::default()
        }
    }

    /// Enabled with a `window`-message flow-control bound per directed
    /// pair (credit-based; see the module docs).
    pub fn bounded(window: u64) -> Self {
        ReliabilityConfig {
            enabled: true,
            window,
            ..ReliabilityConfig::default()
        }
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.base_timeout_ns == 0 {
            return Err("base_timeout_ns must be nonzero when reliability is enabled".into());
        }
        Ok(())
    }

    /// Retransmit timeout for send attempt `attempt` (1-based) of a
    /// `bytes`-byte payload: size-scaled base, doubled per attempt, capped.
    pub fn rto(&self, attempt: u32, bytes: u64) -> SimDuration {
        let base_ns = self.base_timeout_ns + bytes.saturating_mul(self.per_byte_ps) / 1000;
        let shift = (attempt.saturating_sub(1)).min(16);
        let backed_off = base_ns.saturating_mul(1u64 << shift);
        SimDuration::from_ns(backed_off.min(self.max_timeout_ns.max(base_ns)))
    }
}

/// One unacknowledged message held for possible retransmission. The generic
/// parameter is the wire-message type ([`crate::nic::RxMessage`]); keeping
/// it generic here avoids a module cycle and keeps this file unit-testable.
#[derive(Debug, Clone)]
pub struct Pending<M> {
    /// Destination node.
    pub target: NodeId,
    /// Payload bytes on the wire (drives both fabric charge and RTO).
    pub bytes: u64,
    /// The exact message to replay on retransmit.
    pub msg: M,
    /// Sends so far (1 = original send).
    pub attempts: u32,
}

/// Why a tracked message was abandoned — congestion and death need
/// different post-mortems (and different recoveries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryCause {
    /// The retry budget ran out with the peer still presumed alive: the
    /// path was too lossy (or too slow) for the configured budget.
    RetriesExhausted,
    /// The cluster's failure detector declared the peer dead; pending
    /// messages toward it were failed fast instead of burning retries.
    PeerDead,
}

impl std::fmt::Display for DeliveryCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeliveryCause::RetriesExhausted => write!(f, "retries exhausted"),
            DeliveryCause::PeerDead => write!(f, "peer dead"),
        }
    }
}

/// A message abandoned without confirmation of delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryFailure {
    /// When the message was abandoned.
    pub at: SimTime,
    /// Sequence number of the abandoned message.
    pub seq: u64,
    /// Destination it never (confirmably) reached.
    pub target: NodeId,
    /// Total sends attempted.
    pub attempts: u32,
    /// Payload size.
    pub bytes: u64,
    /// Why it was abandoned.
    pub cause: DeliveryCause,
    /// The injected fault the abandonment traces back to, when the caller
    /// knows it (`PeerDead` failures carry the crashed component the
    /// cluster blamed; timer exhaustion cannot name one — the path was
    /// merely lossy).
    pub culprit: Option<CrashComponent>,
}

/// Receiver verdict for one tracked arrival: what [`Reliability::accept`]
/// tells the NIC to do with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Accept<M> {
    /// The arrival was the next expected sequence: commit these messages,
    /// in order — the arrival itself first, then any buffered successors
    /// its sequence unblocked.
    Deliver(Vec<M>),
    /// The arrival is ahead of the expected sequence; it is buffered and
    /// will be delivered when the gap fills. ACK it (it did arrive), but
    /// commit nothing yet.
    Held,
    /// Already committed (or already buffered): re-ACK, commit nothing.
    Duplicate,
    /// The arrival is beyond the flow-control window — the reorder buffer
    /// has no room for it. Do **not** ACK and do **not** buffer: the
    /// sender's retransmit timer will replay it once the window opens.
    Shed,
}

/// Sender- and receiver-side ARQ state for one NIC.
#[derive(Debug)]
pub struct Reliability<M> {
    config: ReliabilityConfig,
    /// Next sequence per *target* node: each directed pair has its own
    /// dense sequence space, the precondition for in-order commit.
    next_seq: HashMap<u32, u64>,
    /// Unacknowledged messages, keyed `(target, seq)`.
    pending: HashMap<(u32, u64), Pending<M>>,
    /// Receiver: next sequence to commit, per origin node.
    next_commit: HashMap<u32, u64>,
    /// Receiver: arrivals ahead of `next_commit`, per origin, ordered so
    /// gap-fills drain them in sequence.
    held: HashMap<u32, BTreeMap<u64, M>>,
    /// Sender: remaining send grant per target (flow control). Absent
    /// means "never refreshed": a full window's worth of initial credit.
    grants: HashMap<u32, u64>,
    failures: Vec<DeliveryFailure>,
}

impl<M> Reliability<M> {
    /// Fresh state.
    pub fn new(config: ReliabilityConfig) -> Self {
        Reliability {
            config,
            next_seq: HashMap::new(),
            pending: HashMap::new(),
            next_commit: HashMap::new(),
            held: HashMap::new(),
            grants: HashMap::new(),
            failures: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ReliabilityConfig {
        &self.config
    }

    /// True when the ARQ layer is active.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Sender: allocate the next sequence number toward `target` (the
    /// message itself is registered with [`Reliability::hold`] once it
    /// carries the sequence).
    pub fn alloc_seq(&mut self, target: NodeId) -> u64 {
        let next = self.next_seq.entry(target.0).or_insert(0);
        let seq = *next;
        *next += 1;
        seq
    }

    /// Sender: hold `msg` under (`target`, `seq`) until ACKed. Consumes
    /// one unit of send grant toward `target` when flow control is on.
    pub fn hold(&mut self, seq: u64, target: NodeId, bytes: u64, msg: M) {
        if self.config.window > 0 {
            let g = self.grants.entry(target.0).or_insert(self.config.window);
            *g = g.saturating_sub(1);
        }
        self.pending.insert(
            (target.0, seq),
            Pending {
                target,
                bytes,
                msg,
                attempts: 1,
            },
        );
    }

    /// Sender: allocate the next sequence number toward `target` and track
    /// the message until ACKed. Returns the sequence.
    pub fn track(&mut self, target: NodeId, bytes: u64, msg: M) -> u64 {
        let seq = self.alloc_seq(target);
        self.hold(seq, target, bytes, msg);
        seq
    }

    /// Sender: an ACK for `seq` arrived from `from`. Returns true if it
    /// retired a pending message (false = stale/duplicate ACK).
    pub fn ack(&mut self, from: NodeId, seq: u64) -> bool {
        self.pending.remove(&(from.0, seq)).is_some()
    }

    /// Sender: may a *new* message toward `target` be transmitted now?
    /// Always true with flow control off; otherwise true while grant
    /// remains. Retransmits are never gated (they already hold grant).
    pub fn may_send(&self, target: NodeId) -> bool {
        self.config.window == 0 || *self.grants.get(&target.0).unwrap_or(&self.config.window) > 0
    }

    /// Sender: current grant toward `target`, for diagnostics.
    pub fn grant(&self, target: NodeId) -> u64 {
        if self.config.window == 0 {
            u64::MAX
        } else {
            *self.grants.get(&target.0).unwrap_or(&self.config.window)
        }
    }

    /// Sender: an ACK from `target` advertised `credits` of reorder-buffer
    /// room. Refresh the grant to that, minus the messages still unACKed
    /// toward `target` (they will occupy buffer room the receiver hasn't
    /// seen yet).
    pub fn refresh_grant(&mut self, target: NodeId, credits: u64) {
        if self.config.window == 0 {
            return;
        }
        let in_flight = self.pending.keys().filter(|&&(t, _)| t == target.0).count() as u64;
        self.grants
            .insert(target.0, credits.saturating_sub(in_flight));
    }

    /// Sender: a message toward `target` was abandoned (retry budget
    /// exhausted) — no ACK will ever refresh its grant, so return the
    /// unit it consumed to keep the flow queue draining.
    pub fn release_grant(&mut self, target: NodeId) {
        if self.config.window > 0 {
            let g = self.grants.entry(target.0).or_insert(self.config.window);
            *g += 1;
        }
    }

    /// Receiver: credits to advertise on an ACK toward `origin` — the
    /// reorder-buffer room left for that origin. Zero with flow control
    /// off (the field is ignored then).
    pub fn rx_credits(&self, origin: NodeId) -> u64 {
        if self.config.window == 0 {
            return 0;
        }
        let held = self.held.get(&origin.0).map_or(0, |b| b.len() as u64);
        self.config.window.saturating_sub(held)
    }

    /// Sender: the retry timer for (`target`, `seq`, `attempt`) fired.
    /// Decides what to do; the NIC performs the wire effects.
    pub fn timer_fired(
        &mut self,
        now: SimTime,
        target: NodeId,
        seq: u64,
        attempt: u32,
    ) -> TimerVerdict<'_, M> {
        let key = (target.0, seq);
        let Some(p) = self.pending.get_mut(&key) else {
            return TimerVerdict::Stale; // ACKed since the timer was set.
        };
        if p.attempts != attempt {
            return TimerVerdict::Stale; // A newer send owns a newer timer.
        }
        if p.attempts > self.config.max_retries {
            let p = self.pending.remove(&key).expect("checked above");
            let failure = DeliveryFailure {
                at: now,
                seq,
                target: p.target,
                attempts: p.attempts,
                bytes: p.bytes,
                cause: DeliveryCause::RetriesExhausted,
                culprit: None,
            };
            self.failures.push(failure.clone());
            return TimerVerdict::Exhausted(failure);
        }
        p.attempts += 1;
        TimerVerdict::Retransmit(self.pending.get(&key).expect("still present"))
    }

    /// Receiver: a tracked message with `seq` from `origin` finished rx
    /// processing. Decide whether to commit it now (possibly together with
    /// buffered successors), hold it for ordering, or drop it as a
    /// duplicate. Every verdict should still be ACKed by the caller.
    pub fn accept(&mut self, origin: NodeId, seq: u64, msg: M) -> Accept<M> {
        let expected = self.next_commit.entry(origin.0).or_insert(0);
        if seq < *expected {
            return Accept::Duplicate;
        }
        let window = self.config.window;
        let buffer = self.held.entry(origin.0).or_default();
        if seq > *expected {
            if buffer.contains_key(&seq) {
                return Accept::Duplicate;
            }
            if window > 0 && seq >= *expected + window {
                // Beyond the reorder window: no room is reserved for this
                // sequence. Shed it (no ACK) — the sender retransmits.
                return Accept::Shed;
            }
            buffer.insert(seq, msg);
            return Accept::Held;
        }
        // The expected sequence: commit it and drain the run of buffered
        // successors it unblocks.
        let mut ready = vec![msg];
        let mut next = seq + 1;
        while let Some(m) = buffer.remove(&next) {
            ready.push(m);
            next += 1;
        }
        *expected = next;
        Accept::Deliver(ready)
    }

    /// Receiver: arrivals currently parked for ordering, for diagnostics.
    pub fn held_count(&self) -> usize {
        self.held.values().map(BTreeMap::len).sum()
    }

    /// Unacknowledged messages, for diagnostics: `(seq, target, attempts)`.
    pub fn pending(&self) -> Vec<(u64, NodeId, u32)> {
        let mut v: Vec<_> = self
            .pending
            .iter()
            .map(|(&(_, seq), p)| (seq, p.target, p.attempts))
            .collect();
        v.sort_unstable_by_key(|&(seq, target, _)| (target.0, seq));
        v
    }

    /// Messages abandoned after exhausting the retry budget.
    pub fn failures(&self) -> &[DeliveryFailure] {
        &self.failures
    }

    /// Sender: the failure detector declared `peer` dead — abandon every
    /// pending message toward it *now* (cause [`DeliveryCause::PeerDead`])
    /// instead of burning the remaining retry budget against a corpse.
    /// `culprit` is the injected component the detector blamed (ground
    /// truth from the fault plan), stamped onto every failure so stall
    /// reports can name the broken hardware. Returns the failures in
    /// sequence order.
    pub fn fail_peer_dead(
        &mut self,
        peer: NodeId,
        now: SimTime,
        culprit: Option<CrashComponent>,
    ) -> Vec<DeliveryFailure> {
        let mut seqs: Vec<u64> = self
            .pending
            .keys()
            .filter(|&&(t, _)| t == peer.0)
            .map(|&(_, seq)| seq)
            .collect();
        seqs.sort_unstable();
        let mut out = Vec::with_capacity(seqs.len());
        for seq in seqs {
            let p = self.pending.remove(&(peer.0, seq)).expect("keyed above");
            let failure = DeliveryFailure {
                at: now,
                seq,
                target: p.target,
                attempts: p.attempts,
                bytes: p.bytes,
                cause: DeliveryCause::PeerDead,
                culprit,
            };
            self.failures.push(failure.clone());
            out.push(failure);
        }
        out
    }
}

/// Outcome of a retry-timer expiry.
#[derive(Debug)]
pub enum TimerVerdict<'a, M> {
    /// The message was ACKed (or superseded) — ignore the timer.
    Stale,
    /// Send the message again; `attempts` has been bumped.
    Retransmit(&'a Pending<M>),
    /// Budget exhausted; the message is abandoned.
    Exhausted(DeliveryFailure),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(max_retries: u32) -> Reliability<&'static str> {
        Reliability::new(ReliabilityConfig {
            enabled: true,
            max_retries,
            ..ReliabilityConfig::default()
        })
    }

    #[test]
    fn rto_scales_with_bytes_and_backs_off_exponentially() {
        let c = ReliabilityConfig::on();
        let small = c.rto(1, 64);
        assert_eq!(small, SimDuration::from_ns(10_000 + 64 * 400 / 1000));
        assert_eq!(c.rto(2, 64), SimDuration::from_ns(2 * (10_000 + 25)));
        assert_eq!(c.rto(3, 64), SimDuration::from_ns(4 * (10_000 + 25)));
        // The cap binds eventually…
        assert_eq!(c.rto(12, 64), SimDuration::from_ns(1_000_000));
        // …but never below the size-dependent base for huge payloads.
        let huge = c.rto(1, 8 << 20);
        assert!(huge > SimDuration::from_ns(1_000_000), "{huge}");
        assert_eq!(c.rto(9, 8 << 20), huge, "cap floors at the base");
    }

    #[test]
    fn sequences_are_per_target_and_acked_once() {
        let mut r = rel(3);
        let a = r.track(NodeId(1), 64, "a");
        let b = r.track(NodeId(2), 64, "b");
        // Each directed pair owns its own dense sequence space.
        assert_eq!(a, 0);
        assert_eq!(b, 0);
        assert_eq!(r.track(NodeId(1), 64, "a2"), 1);
        assert_eq!(r.pending().len(), 3);
        assert!(r.ack(NodeId(1), a));
        assert!(!r.ack(NodeId(1), a), "second ACK is stale");
        assert_eq!(r.pending().len(), 2, "target 2's seq 0 is untouched");
        assert!(r.ack(NodeId(2), b));
    }

    #[test]
    fn timer_lifecycle_retransmit_then_exhaust() {
        let mut r = rel(2);
        let t = NodeId(1);
        let seq = r.track(t, 100, "msg");
        // Attempt 1 times out -> retransmit (attempts becomes 2).
        match r.timer_fired(SimTime::from_us(1), t, seq, 1) {
            TimerVerdict::Retransmit(p) => assert_eq!(p.attempts, 2),
            v => panic!("expected retransmit, got {v:?}"),
        }
        // The old timer for attempt 1 is stale now.
        assert!(matches!(
            r.timer_fired(SimTime::from_us(2), t, seq, 1),
            TimerVerdict::Stale
        ));
        match r.timer_fired(SimTime::from_us(3), t, seq, 2) {
            TimerVerdict::Retransmit(p) => assert_eq!(p.attempts, 3),
            v => panic!("expected retransmit, got {v:?}"),
        }
        // Budget (max_retries = 2 extra sends) is now spent.
        match r.timer_fired(SimTime::from_us(4), t, seq, 3) {
            TimerVerdict::Exhausted(f) => {
                assert_eq!(f.seq, seq);
                assert_eq!(f.attempts, 3);
                assert_eq!(f.at, SimTime::from_us(4));
            }
            v => panic!("expected exhausted, got {v:?}"),
        }
        assert!(r.pending().is_empty());
        assert_eq!(r.failures().len(), 1);
    }

    #[test]
    fn ack_beats_timer() {
        let mut r = rel(2);
        let t = NodeId(1);
        let seq = r.track(t, 100, "msg");
        assert!(r.ack(t, seq));
        assert!(matches!(
            r.timer_fired(SimTime::from_us(1), t, seq, 1),
            TimerVerdict::Stale
        ));
        assert!(r.failures().is_empty());
    }

    #[test]
    fn receiver_commits_in_order_per_origin() {
        let mut r = rel(1);
        assert_eq!(r.accept(NodeId(3), 0, "a"), Accept::Deliver(vec!["a"]));
        assert_eq!(r.accept(NodeId(3), 0, "a"), Accept::Duplicate);
        assert_eq!(
            r.accept(NodeId(4), 0, "x"),
            Accept::Deliver(vec!["x"]),
            "same seq, different origin is new"
        );
        assert_eq!(r.accept(NodeId(3), 1, "b"), Accept::Deliver(vec!["b"]));
    }

    #[test]
    fn out_of_order_arrivals_are_held_until_the_gap_fills() {
        let mut r = rel(1);
        // seq 1 and 2 race past a dropped seq 0: both are parked.
        assert_eq!(r.accept(NodeId(7), 1, "b"), Accept::Held);
        assert_eq!(r.accept(NodeId(7), 2, "c"), Accept::Held);
        assert_eq!(r.held_count(), 2);
        // A duplicate of a parked arrival is still a duplicate.
        assert_eq!(r.accept(NodeId(7), 1, "b"), Accept::Duplicate);
        // The retransmitted seq 0 unblocks the whole run, in order.
        assert_eq!(
            r.accept(NodeId(7), 0, "a"),
            Accept::Deliver(vec!["a", "b", "c"])
        );
        assert_eq!(r.held_count(), 0);
        // And the stream continues normally after the drain.
        assert_eq!(r.accept(NodeId(7), 3, "d"), Accept::Deliver(vec!["d"]));
    }

    #[test]
    fn window_sheds_arrivals_beyond_reorder_room() {
        let mut r: Reliability<&str> = Reliability::new(ReliabilityConfig::bounded(2));
        let o = NodeId(9);
        // expected = 0, window = 2: seqs 0 and 1 fit, seq 2 does not.
        assert_eq!(r.accept(o, 1, "b"), Accept::Held);
        assert_eq!(r.accept(o, 2, "c"), Accept::Shed);
        assert_eq!(r.held_count(), 1, "shed arrivals are not buffered");
        assert_eq!(r.rx_credits(o), 1);
        // Filling the gap drains the run and reopens the window.
        assert_eq!(r.accept(o, 0, "a"), Accept::Deliver(vec!["a", "b"]));
        assert_eq!(r.rx_credits(o), 2);
        assert_eq!(r.accept(o, 2, "c"), Accept::Deliver(vec!["c"]));
    }

    #[test]
    fn grants_gate_new_sends_and_refresh_from_credits() {
        let mut r: Reliability<&str> = Reliability::new(ReliabilityConfig::bounded(2));
        let t = NodeId(1);
        assert!(r.may_send(t));
        let s0 = r.track(t, 8, "a");
        let s1 = r.track(t, 8, "b");
        assert!(!r.may_send(t), "window's worth of grant consumed");
        // ACK for s0 advertises 2 credits; one message (s1) still unACKed.
        assert!(r.ack(t, s0));
        r.refresh_grant(t, 2);
        assert_eq!(r.grant(t), 1);
        assert!(r.may_send(t));
        // Exhaustion releases the grant a dead message consumed.
        let s2 = r.track(t, 8, "c");
        assert!(!r.may_send(t));
        assert!(matches!(
            r.timer_fired(SimTime::from_us(1), t, s1, 1),
            TimerVerdict::Retransmit(_)
        ));
        let _ = s2;
        r.release_grant(t);
        assert!(r.may_send(t));
        // Flow control off: everything is always allowed.
        let off: Reliability<&str> = Reliability::new(ReliabilityConfig::on());
        assert!(off.may_send(t));
        assert_eq!(off.grant(t), u64::MAX);
        assert_eq!(off.rx_credits(t), 0);
    }

    #[test]
    fn disabled_default_and_validation() {
        assert!(!ReliabilityConfig::default().enabled);
        assert!(ReliabilityConfig::on().enabled);
        assert!(ReliabilityConfig::default().validate().is_ok());
        assert!(ReliabilityConfig {
            enabled: true,
            base_timeout_ns: 0,
            ..ReliabilityConfig::default()
        }
        .validate()
        .is_err());
    }
}
