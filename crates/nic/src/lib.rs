//! # gtn-nic — RDMA NIC with the GPU-TN triggered-operation extension
//!
//! This crate is the paper's contribution in silicon form: a
//! Portals-4-style one-sided RDMA NIC (§2.2) extended with the *trigger
//! list* hardware of §3 —
//!
//! - **Trigger entries** carry a network operation, a *tag*, a *counter*,
//!   and a *threshold* ([`trigger::TriggerEntry`]).
//! - The GPU activates entries by storing a tag to the NIC's memory-mapped
//!   **trigger address**; writes land in a FIFO the NIC drains, matching
//!   tags against the trigger list and bumping counters
//!   ([`nic::Nic`], [`nic::NicEvent::TriggerWrite`]).
//! - When `counter >= threshold` the pre-built operation fires (§3.1).
//! - **Relaxed synchronization** (§3.2): a write that matches no entry
//!   allocates a counter-only entry, so the GPU may trigger operations the
//!   CPU has not posted yet; the late post fires immediately if the counter
//!   already reached the threshold.
//! - Three trigger-list **lookup implementations** (§3.3) — linear list,
//!   16-way associative, hash — share functional behaviour but differ in
//!   per-match cost and capacity ([`lookup::LookupKind`]), feeding the
//!   ablation bench.
//!
//! The NIC is a sans-IO state machine: [`nic::Nic::handle`] consumes a
//! [`nic::NicEvent`], mutates simulated memory / fabric occupancy, and
//! returns follow-up events for the cluster glue to schedule (locally or on
//! a remote node's NIC).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cq;
pub mod dynamic;
pub mod lookup;
pub mod nic;
pub mod op;
pub mod reliability;
pub mod trigger;

pub use config::NicConfig;
pub use dynamic::DynFields;
pub use lookup::LookupKind;
pub use nic::{Nic, NicEvent, NicNote, NicOutput};
pub use op::{NetOp, OpId, Tag};
pub use reliability::{DeliveryCause, DeliveryFailure, ReliabilityConfig};
pub use trigger::{TriggerError, TriggerList, TriggerPartitions};
