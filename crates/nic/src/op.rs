//! Network operation descriptors: the one-sided put/get vocabulary of §2.2,
//! plus the trigger-entry metadata fields of §3.1 ("description of the
//! network operation and all the metadata required to execute that
//! operation, such as a pointer to the memory resident send buffer, length,
//! target id, etc.").

use gtn_mem::{Addr, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a trigger entry (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tag(pub u64);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// Identifier of an in-flight NIC operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

/// Target-side notification: after the payload lands, the target NIC
/// fetch-adds `add` to `flag` (PGAS-style polling target, §4.2.5) and —
/// optionally — performs a **chained trigger write** to its own trigger
/// list (`chain`). Chaining is the Portals-4 counter mechanism the paper
/// builds on (Underwood et al. \[40\]): arrivals can progress a sequence of
/// pre-registered operations entirely on the NIC, with no CPU or GPU on
/// the path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Notify {
    /// Flag address on the target node.
    pub flag: Addr,
    /// Value to add to the flag (fetch-add, so flags can count arrivals).
    pub add: u64,
    /// Tag to write to the *receiving* NIC's trigger list after the
    /// payload commits (counter chaining, \[40\]).
    pub chain: Option<Tag>,
}

impl Notify {
    /// Plain arrival counting: fetch-add 1 to `flag`, no chaining.
    pub fn count(flag: Addr) -> Notify {
        Notify {
            flag,
            add: 1,
            chain: None,
        }
    }

    /// Arrival counting plus a chained trigger write of `tag` on the
    /// receiving NIC.
    pub fn count_then_trigger(flag: Addr, tag: Tag) -> Notify {
        Notify {
            flag,
            add: 1,
            chain: Some(tag),
        }
    }
}

/// A one-sided network operation, fully described up front so the NIC can
/// execute it without host involvement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetOp {
    /// Write `len` bytes from local `src` to `dst` on `target`.
    Put {
        /// Local send buffer.
        src: Addr,
        /// Payload length in bytes.
        len: u64,
        /// Destination node.
        target: NodeId,
        /// Destination address on `target`.
        dst: Addr,
        /// Optional target-side notification (§4.2.5).
        notify: Option<Notify>,
        /// Optional initiator-side local-completion flag: fetch-add 1 when
        /// the send buffer is safe to reuse (§4.2.4).
        completion: Option<Addr>,
    },
    /// Read `len` bytes from `src` on `target` into local `dst`.
    Get {
        /// Remote source address on `target`.
        src: Addr,
        /// Payload length in bytes.
        len: u64,
        /// Node owning `src`.
        target: NodeId,
        /// Local destination buffer.
        dst: Addr,
        /// Local-completion flag: fetch-add 1 when the data has arrived
        /// (§4.2.4: "for gets, completion defines when the data has been
        /// received from the target").
        completion: Option<Addr>,
    },
}

impl NetOp {
    /// The node this operation communicates with.
    pub fn target(&self) -> NodeId {
        match self {
            NetOp::Put { target, .. } | NetOp::Get { target, .. } => *target,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            NetOp::Put { len, .. } | NetOp::Get { len, .. } => *len,
        }
    }

    /// True if the payload is empty (flag-only message).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short display form for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            NetOp::Put { .. } => "put",
            NetOp::Get { .. } => "get",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_mem::RegionId;

    fn addr(n: u32) -> Addr {
        Addr::base(NodeId(n), RegionId(0))
    }

    #[test]
    fn accessors() {
        let p = NetOp::Put {
            src: addr(0),
            len: 64,
            target: NodeId(1),
            dst: addr(1),
            notify: None,
            completion: None,
        };
        assert_eq!(p.target(), NodeId(1));
        assert_eq!(p.len(), 64);
        assert!(!p.is_empty());
        assert_eq!(p.kind(), "put");

        let g = NetOp::Get {
            src: addr(1),
            len: 0,
            target: NodeId(1),
            dst: addr(0),
            completion: None,
        };
        assert!(g.is_empty());
        assert_eq!(g.kind(), "get");
    }

    #[test]
    fn tag_display() {
        assert_eq!(Tag(7).to_string(), "tag7");
    }
}
