//! The trigger list: tag-matched counters gating pre-registered operations.
//!
//! This module implements the semantics of §3.1 (tag / counter / threshold
//! matching) and §3.2 (relaxed synchronization — GPU triggers may precede
//! the CPU post). It is pure state: the [`crate::nic::Nic`] wraps it with
//! FIFO timing and DMA/fabric effects, so every matching rule is unit- and
//! property-testable here in isolation.
//!
//! ### Spill to host memory
//!
//! A capacity-bounded lookup (the paper's 16-way CAM, §3.3) no longer
//! rejects inserts outright: entries beyond the CAM's capacity **spill**
//! into a host-memory overflow table, matching Portals-4's
//! spill-to-host handling of resource exhaustion. Spilled entries keep
//! exact tag-match semantics — only the *match cost* differs (the NIC
//! charges [`crate::config::NicConfig::spill_match_extra_ns`] for tags
//! that resolve to the overflow table). As CAM entries retire, spilled
//! entries are **promoted** back in, lowest tag first (deterministic).
//! Only when the overflow table itself is full does registration fail
//! with [`TriggerError::CapacityExceeded`].

use crate::dynamic::DynFields;
use crate::lookup::LookupKind;
use crate::op::{NetOp, Tag};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Static partitioning of the trigger list across tenants.
///
/// Multi-tenant serving slices the CAM into `partitions` equal shares
/// (ways are distributed round-robin, lowest partitions first when they
/// do not divide evenly) so one tenant's burst cannot evict another
/// tenant's armed entries. A tag belongs to partition `tag % partitions`
/// — tenancy layers encode the tenant's partition into the tag's low
/// bits (see `gtn_core::tenancy`). `depth` is an admission-control bound
/// on *active* entries (CAM + overflow) per partition: inserts past it
/// are **shed** — counted, reported, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriggerPartitions {
    /// Number of equal CAM shares (>= 1). `1` means unpartitioned.
    pub partitions: u32,
    /// Max active entries per partition before new inserts are shed;
    /// `None` disables admission control (spill/reject semantics only).
    pub depth: Option<u64>,
}

impl TriggerPartitions {
    /// The unpartitioned configuration: one partition, no admission bound.
    /// Behavior is bit-identical to a pre-partitioning trigger list.
    pub const NONE: TriggerPartitions = TriggerPartitions {
        partitions: 1,
        depth: None,
    };

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.partitions == 0 {
            return Err("trigger partitions must be >= 1".into());
        }
        if self.depth == Some(0) {
            return Err("partition admission depth must be >= 1 (or None)".into());
        }
        Ok(())
    }
}

impl Default for TriggerPartitions {
    fn default() -> Self {
        TriggerPartitions::NONE
    }
}

/// One trigger entry (§3.1): "Network Operation, Tag, Counter, Threshold".
///
/// Under relaxed synchronization the operation and threshold may be absent:
/// the entry then only accumulates counts until the CPU's post arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerEntry {
    /// Unique identifier for this entry.
    pub tag: Tag,
    /// Number of matching trigger-address writes collected so far.
    pub counter: u64,
    /// Writes to collect before initiating the operation; `None` until the
    /// CPU registers the operation (§3.2).
    pub threshold: Option<u64>,
    /// The pre-built network operation; `None` until registered.
    pub op: Option<NetOp>,
    /// Field overrides accumulated from dynamic trigger writes (§3.4
    /// extension); applied to `op` at fire time.
    pub overrides: DynFields,
}

impl TriggerEntry {
    /// True if the entry is armed (has an operation) and its counter has
    /// reached the threshold.
    fn ready(&self) -> bool {
        match (self.threshold, &self.op) {
            (Some(t), Some(_)) => self.counter >= t,
            _ => false,
        }
    }
}

/// A trigger entry whose condition has been met: the NIC should now execute
/// `op`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fired {
    /// Tag of the entry that fired.
    pub tag: Tag,
    /// Counter value at fire time.
    pub counter: u64,
    /// The operation to execute.
    pub op: NetOp,
}

/// Registration/trigger failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriggerError {
    /// An armed entry with this tag already exists; tags identify entries
    /// uniquely (§3.1).
    DuplicateTag(Tag),
    /// Both the associative lookup (§3.3) *and* the host-memory overflow
    /// table are full: the NIC genuinely has nowhere left to put the
    /// entry.
    CapacityExceeded {
        /// Total capacity (CAM ways + overflow table).
        capacity: usize,
        /// The tag that could not be inserted.
        tag: Tag,
    },
    /// A registration supplied a zero threshold, which would make the
    /// operation fire before any trigger — use a direct post instead.
    ZeroThreshold(Tag),
    /// The tag's partition is at its admission-control depth
    /// ([`TriggerPartitions::depth`]): the entry was shed to protect
    /// already-admitted work. Expected under overload — count it, back
    /// off, retry later.
    AdmissionShed {
        /// The tag that was shed.
        tag: Tag,
        /// Partition the tag maps to (`tag % partitions`).
        partition: u32,
        /// The configured per-partition depth that was reached.
        depth: u64,
    },
}

impl fmt::Display for TriggerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerError::DuplicateTag(t) => write!(f, "trigger entry {t} already armed"),
            TriggerError::CapacityExceeded { capacity, tag } => write!(
                f,
                "trigger list full (CAM + overflow, {capacity} entries) inserting {tag}; \
                 raise the overflow capacity or retire entries first"
            ),
            TriggerError::ZeroThreshold(t) => {
                write!(f, "{t}: threshold must be >= 1 (use a direct post)")
            }
            TriggerError::AdmissionShed {
                tag,
                partition,
                depth,
            } => write!(
                f,
                "{tag} shed: trigger partition {partition} at admission depth {depth}"
            ),
        }
    }
}

impl std::error::Error for TriggerError {}

/// Default capacity of the host-memory overflow (spill) table. Host
/// memory is cheap: generous enough that only a pathological workload
/// ever sees [`TriggerError::CapacityExceeded`].
pub const DEFAULT_OVERFLOW_CAPACITY: usize = 65_536;

/// The NIC's list of registered trigger entries.
///
/// Functionally a map from tag to entry regardless of [`LookupKind`]; the
/// lookup kind contributes the per-match *cost* (consumed by the NIC's FIFO
/// drain loop) and the *capacity* of the fast CAM tier. Entries past that
/// capacity live in the host-memory overflow table (see the module docs).
#[derive(Debug)]
pub struct TriggerList {
    entries: HashMap<u64, TriggerEntry>,
    /// Host-memory spill table: same semantics, slower matches.
    overflow: HashMap<u64, TriggerEntry>,
    overflow_capacity: usize,
    kind: LookupKind,
    parts: TriggerPartitions,
    /// CAM-resident entries per partition (indexes `0..parts.partitions`).
    cam_counts: Vec<usize>,
    /// Overflow-resident entries per partition.
    overflow_counts: Vec<usize>,
    fired_total: u64,
    early_allocations: u64,
    spills: u64,
    promotions: u64,
    shed: u64,
    rejected_capacity: u64,
    rejected_duplicate: u64,
    rejected_zero_threshold: u64,
}

impl TriggerList {
    /// An empty list using `kind` for lookups, with the default overflow
    /// table capacity.
    pub fn new(kind: LookupKind) -> Self {
        Self::with_overflow(kind, DEFAULT_OVERFLOW_CAPACITY)
    }

    /// An empty list with an explicit overflow-table capacity (tests and
    /// resource-pressure scenarios shrink it to force exhaustion).
    pub fn with_overflow(kind: LookupKind, overflow_capacity: usize) -> Self {
        Self::with_partitions(kind, overflow_capacity, TriggerPartitions::NONE)
    }

    /// An empty list whose CAM is statically partitioned (multi-tenant
    /// serving). With [`TriggerPartitions::NONE`] this is bit-identical
    /// to [`TriggerList::with_overflow`].
    pub fn with_partitions(
        kind: LookupKind,
        overflow_capacity: usize,
        parts: TriggerPartitions,
    ) -> Self {
        assert!(parts.partitions >= 1, "trigger partitions must be >= 1");
        let n = parts.partitions as usize;
        TriggerList {
            entries: HashMap::new(),
            overflow: HashMap::new(),
            overflow_capacity,
            kind,
            parts,
            cam_counts: vec![0; n],
            overflow_counts: vec![0; n],
            fired_total: 0,
            early_allocations: 0,
            spills: 0,
            promotions: 0,
            shed: 0,
            rejected_capacity: 0,
            rejected_duplicate: 0,
            rejected_zero_threshold: 0,
        }
    }

    /// Number of simultaneously active entries (CAM + overflow).
    pub fn active(&self) -> usize {
        self.entries.len() + self.overflow.len()
    }

    /// Entries currently resident in the fast (CAM) tier.
    pub fn cam_len(&self) -> usize {
        self.entries.len()
    }

    /// Entries currently spilled to the host-memory overflow table.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Total entries that spilled to the overflow table.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Total entries promoted from the overflow table back into the CAM.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Total operations fired since construction.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Entries allocated by GPU writes before the CPU post (relaxed-sync
    /// path, §3.2).
    pub fn early_allocations(&self) -> u64 {
        self.early_allocations
    }

    /// The lookup implementation in use.
    pub fn lookup_kind(&self) -> LookupKind {
        self.kind
    }

    /// Cost of one tag match at the current occupancy.
    pub fn match_cost(&self) -> gtn_sim::time::SimDuration {
        self.kind.match_cost(self.active())
    }

    /// True if matching `tag` would touch the host-memory overflow table:
    /// either the entry lives there, or the tag is unknown and a full
    /// partition would force its allocation to spill. The NIC charges the
    /// spill surcharge for such matches.
    pub fn resolves_to_overflow(&self, tag: Tag) -> bool {
        if self.entries.contains_key(&tag.0) {
            return false;
        }
        self.overflow.contains_key(&tag.0) || self.cam_full_in(self.partition_of(tag))
    }

    /// The partition `tag` maps to: `tag % partitions`.
    pub fn partition_of(&self, tag: Tag) -> u32 {
        (tag.0 % u64::from(self.parts.partitions)) as u32
    }

    /// The partition configuration in effect.
    pub fn partitions(&self) -> TriggerPartitions {
        self.parts
    }

    /// CAM ways assigned to partition `p`: the total ways divided evenly,
    /// with the first `ways % partitions` partitions taking one extra.
    /// Unbounded lookup kinds have no CAM tier, so every partition is
    /// unbounded too.
    pub fn cam_capacity_of(&self, p: u32) -> usize {
        match self.kind.capacity() {
            None => usize::MAX,
            Some(ways) => {
                let n = self.parts.partitions as usize;
                ways / n + usize::from((p as usize) < ways % n)
            }
        }
    }

    /// Active entries (CAM + overflow) currently held by partition `p`.
    pub fn active_in_partition(&self, p: u32) -> usize {
        self.cam_counts[p as usize] + self.overflow_counts[p as usize]
    }

    fn cam_full_in(&self, p: u32) -> bool {
        self.cam_counts[p as usize] >= self.cam_capacity_of(p)
    }

    /// Borrow an entry (tests and diagnostics).
    pub fn entry(&self, tag: Tag) -> Option<&TriggerEntry> {
        self.entries
            .get(&tag.0)
            .or_else(|| self.overflow.get(&tag.0))
    }

    /// Rejected registrations and writes, by cause:
    /// `(capacity_exceeded, duplicate_tag, zero_threshold)`.
    pub fn rejections(&self) -> (u64, u64, u64) {
        (
            self.rejected_capacity,
            self.rejected_duplicate,
            self.rejected_zero_threshold,
        )
    }

    /// Total rejected registrations and writes.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_capacity + self.rejected_duplicate + self.rejected_zero_threshold
    }

    /// Entries shed by per-partition admission control
    /// ([`TriggerPartitions::depth`]). Deliberately *not* part of
    /// [`TriggerList::rejections`]: a shed is expected overload behavior,
    /// not a resource-model error.
    pub fn admission_shed(&self) -> u64 {
        self.shed
    }

    /// Snapshot of the still-pending entries for diagnostics, sorted by
    /// tag: `(tag, counter, threshold, armed)`. A stalled node's list shows
    /// exactly which matches it is still waiting for.
    pub fn pending_entries(&self) -> Vec<(Tag, u64, Option<u64>, bool)> {
        let mut v: Vec<_> = self
            .entries
            .values()
            .chain(self.overflow.values())
            .map(|e| (e.tag, e.counter, e.threshold, e.op.is_some()))
            .collect();
        v.sort_unstable_by_key(|&(tag, ..)| tag.0);
        v
    }

    fn entry_mut(&mut self, tag: Tag) -> Option<&mut TriggerEntry> {
        if self.entries.contains_key(&tag.0) {
            self.entries.get_mut(&tag.0)
        } else {
            self.overflow.get_mut(&tag.0)
        }
    }

    /// Place a brand-new entry in its tag's partition: admission check
    /// first, then CAM while the partition has room, otherwise spill to
    /// the overflow table, otherwise reject.
    fn insert_new(&mut self, tag: Tag, entry: TriggerEntry) -> Result<(), TriggerError> {
        let p = self.partition_of(tag);
        if let Some(depth) = self.parts.depth {
            if self.active_in_partition(p) as u64 >= depth {
                self.shed += 1;
                return Err(TriggerError::AdmissionShed {
                    tag,
                    partition: p,
                    depth,
                });
            }
        }
        if !self.cam_full_in(p) {
            self.entries.insert(tag.0, entry);
            self.cam_counts[p as usize] += 1;
            return Ok(());
        }
        if self.overflow.len() < self.overflow_capacity {
            self.spills += 1;
            self.overflow.insert(tag.0, entry);
            self.overflow_counts[p as usize] += 1;
            return Ok(());
        }
        self.rejected_capacity += 1;
        Err(TriggerError::CapacityExceeded {
            capacity: self.kind.capacity().unwrap_or(0) + self.overflow_capacity,
            tag,
        })
    }

    /// Retiring a CAM entry frees slots in its partition: move that
    /// partition's overflow entries back into the fast tier, lowest tag
    /// first (deterministic order).
    fn promote_in(&mut self, p: u32) {
        while !self.cam_full_in(p) && self.overflow_counts[p as usize] > 0 {
            let tag = self
                .overflow
                .keys()
                .copied()
                .filter(|&t| self.partition_of(Tag(t)) == p)
                .min()
                .expect("partition overflow count is non-zero");
            let e = self.overflow.remove(&tag).expect("key just found");
            self.entries.insert(tag, e);
            self.overflow_counts[p as usize] -= 1;
            self.cam_counts[p as usize] += 1;
            self.promotions += 1;
        }
    }

    /// CPU-side registration of a triggered operation (§3.1 step 1 /
    /// Fig. 6 `TrigPut`).
    ///
    /// If a counter-only entry for `tag` already exists (the GPU triggered
    /// early — §3.2), the operation attaches to the existing counter; if
    /// that counter has already reached `threshold`, the operation fires
    /// immediately and `Ok(Some(Fired))` is returned.
    pub fn register(
        &mut self,
        tag: Tag,
        op: NetOp,
        threshold: u64,
    ) -> Result<Option<Fired>, TriggerError> {
        if threshold == 0 {
            self.rejected_zero_threshold += 1;
            return Err(TriggerError::ZeroThreshold(tag));
        }
        match self.entry_mut(tag) {
            Some(e) if e.op.is_some() => {
                self.rejected_duplicate += 1;
                Err(TriggerError::DuplicateTag(tag))
            }
            Some(e) => {
                // §3.2: "the new triggered operation is associated with the
                // existing counter. If the counter value is already greater
                // than or equal to the threshold, the network operation is
                // executed immediately."
                e.threshold = Some(threshold);
                e.op = Some(op);
                if e.ready() {
                    let fired = self.take_fired(tag);
                    Ok(Some(fired))
                } else {
                    Ok(None)
                }
            }
            None => {
                self.insert_new(
                    tag,
                    TriggerEntry {
                        tag,
                        counter: 0,
                        threshold: Some(threshold),
                        op: Some(op),
                        overrides: DynFields::NONE,
                    },
                )?;
                Ok(None)
            }
        }
    }

    /// A tag write popped out of the trigger FIFO (§3.1 step 3).
    ///
    /// Increments the matching entry's counter, allocating a counter-only
    /// entry if the tag is unknown (§3.2). Returns the fired operation if
    /// the threshold is met.
    pub fn trigger(&mut self, tag: Tag) -> Result<Option<Fired>, TriggerError> {
        self.trigger_dyn(tag, DynFields::NONE)
    }

    /// A *dynamic* tag write (§3.4 extension): like [`TriggerList::trigger`]
    /// but carrying field overrides that are merged into the entry and
    /// applied to the template operation at fire time. Later writes win
    /// field-wise.
    pub fn trigger_dyn(
        &mut self,
        tag: Tag,
        fields: DynFields,
    ) -> Result<Option<Fired>, TriggerError> {
        match self.entry_mut(tag) {
            Some(e) => {
                e.counter += 1;
                e.overrides.merge(fields);
                if e.ready() {
                    Ok(Some(self.take_fired(tag)))
                } else {
                    Ok(None)
                }
            }
            None => {
                // §3.2: "the NIC allocates a trigger entry for this tag
                // without a corresponding network operation or threshold."
                self.insert_new(
                    tag,
                    TriggerEntry {
                        tag,
                        counter: 1,
                        threshold: None,
                        op: None,
                        overrides: fields,
                    },
                )?;
                self.early_allocations += 1;
                Ok(None)
            }
        }
    }

    /// Remove a ready entry and produce its `Fired` record. Entries are
    /// one-shot: a fired tag leaves the list (re-triggering the same tag
    /// later allocates a fresh counter-only entry). Retiring a CAM entry
    /// promotes waiting overflow entries into the freed slots.
    fn take_fired(&mut self, tag: Tag) -> Fired {
        let p = self.partition_of(tag);
        let e = if let Some(e) = self.entries.remove(&tag.0) {
            self.cam_counts[p as usize] -= 1;
            self.promote_in(p);
            e
        } else {
            let e = self.overflow.remove(&tag.0).expect("ready entry exists");
            self.overflow_counts[p as usize] -= 1;
            e
        };
        self.fired_total += 1;
        let mut op = e.op.expect("ready entry has op");
        e.overrides.apply(&mut op);
        Fired {
            tag,
            counter: e.counter,
            op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_mem::{Addr, NodeId, RegionId};

    fn put() -> NetOp {
        NetOp::Put {
            src: Addr::base(NodeId(0), RegionId(0)),
            len: 64,
            target: NodeId(1),
            dst: Addr::base(NodeId(1), RegionId(0)),
            notify: None,
            completion: None,
        }
    }

    fn list() -> TriggerList {
        TriggerList::new(LookupKind::Associative { ways: 16 })
    }

    #[test]
    fn threshold_one_fires_on_first_trigger() {
        let mut l = list();
        assert_eq!(l.register(Tag(1), put(), 1), Ok(None));
        let fired = l.trigger(Tag(1)).unwrap().expect("fires");
        assert_eq!(fired.tag, Tag(1));
        assert_eq!(fired.counter, 1);
        assert_eq!(l.active(), 0, "entries are one-shot");
        assert_eq!(l.fired_total(), 1);
    }

    #[test]
    fn threshold_n_counts_writes() {
        let mut l = list();
        l.register(Tag(5), put(), 3).unwrap();
        assert_eq!(l.trigger(Tag(5)).unwrap(), None);
        assert_eq!(l.trigger(Tag(5)).unwrap(), None);
        let fired = l.trigger(Tag(5)).unwrap().expect("third write fires");
        assert_eq!(fired.counter, 3);
    }

    #[test]
    fn relaxed_sync_trigger_before_post() {
        // §3.2 scenario: GPU triggers twice, then the CPU posts with
        // threshold 2 -> fires immediately at registration.
        let mut l = list();
        assert_eq!(l.trigger(Tag(9)).unwrap(), None);
        assert_eq!(l.trigger(Tag(9)).unwrap(), None);
        assert_eq!(l.early_allocations(), 1);
        assert_eq!(l.entry(Tag(9)).unwrap().counter, 2);
        assert_eq!(l.entry(Tag(9)).unwrap().op, None);
        let fired = l
            .register(Tag(9), put(), 2)
            .unwrap()
            .expect("fires at post");
        assert_eq!(fired.counter, 2);
        assert_eq!(l.active(), 0);
    }

    #[test]
    fn relaxed_sync_partial_count_waits_for_remaining_triggers() {
        let mut l = list();
        l.trigger(Tag(9)).unwrap();
        assert_eq!(l.register(Tag(9), put(), 3).unwrap(), None, "1 of 3");
        assert_eq!(l.trigger(Tag(9)).unwrap(), None, "2 of 3");
        assert!(l.trigger(Tag(9)).unwrap().is_some(), "3 of 3 fires");
    }

    #[test]
    fn counter_overshoot_fires_once_at_post() {
        let mut l = list();
        for _ in 0..10 {
            l.trigger(Tag(2)).unwrap();
        }
        let fired = l.register(Tag(2), put(), 4).unwrap().expect("fires");
        assert_eq!(fired.counter, 10, "counter may exceed threshold");
        assert_eq!(l.fired_total(), 1);
    }

    #[test]
    fn duplicate_armed_tag_rejected() {
        let mut l = list();
        l.register(Tag(1), put(), 1).unwrap();
        assert_eq!(
            l.register(Tag(1), put(), 1),
            Err(TriggerError::DuplicateTag(Tag(1)))
        );
    }

    #[test]
    fn zero_threshold_rejected() {
        let mut l = list();
        assert_eq!(
            l.register(Tag(1), put(), 0),
            Err(TriggerError::ZeroThreshold(Tag(1)))
        );
    }

    #[test]
    fn associative_overflow_spills_instead_of_rejecting() {
        let mut l = TriggerList::new(LookupKind::Associative { ways: 2 });
        l.register(Tag(1), put(), 1).unwrap();
        l.register(Tag(2), put(), 1).unwrap();
        // Third post and an early trigger both land in the overflow table.
        assert_eq!(l.register(Tag(3), put(), 1), Ok(None));
        assert_eq!(l.trigger(Tag(4)).unwrap(), None);
        assert_eq!((l.cam_len(), l.overflow_len()), (2, 2));
        assert_eq!(l.spills(), 2);
        assert!(l.resolves_to_overflow(Tag(3)));
        assert!(!l.resolves_to_overflow(Tag(1)));
        // Spilled entries keep exact match semantics, firing straight from
        // the overflow table (retiring an overflow entry frees no CAM slot,
        // so nothing promotes yet).
        let fired = l.trigger(Tag(3)).unwrap().expect("spilled entry fires");
        assert_eq!(fired.tag, Tag(3));
        assert_eq!(l.promotions(), 0);
        assert_eq!((l.cam_len(), l.overflow_len()), (2, 1));
        // Retiring a CAM entry promotes the waiting overflow tag into it.
        l.trigger(Tag(1)).unwrap().expect("fires");
        assert_eq!(l.promotions(), 1);
        assert_eq!((l.cam_len(), l.overflow_len()), (2, 0));
        assert!(!l.resolves_to_overflow(Tag(4)));
    }

    #[test]
    fn exhausted_overflow_table_still_rejects() {
        let mut l = TriggerList::with_overflow(LookupKind::Associative { ways: 2 }, 1);
        l.register(Tag(1), put(), 1).unwrap();
        l.register(Tag(2), put(), 1).unwrap();
        l.register(Tag(3), put(), 1).unwrap(); // spills
        assert_eq!(
            l.register(Tag(4), put(), 1),
            Err(TriggerError::CapacityExceeded {
                capacity: 3,
                tag: Tag(4)
            })
        );
        assert!(matches!(
            l.trigger(Tag(5)),
            Err(TriggerError::CapacityExceeded { .. })
        ));
        assert_eq!(l.rejections().0, 2);
        // Firing a CAM entry frees a slot (promoting the spilled entry),
        // after which a new registration fits again.
        l.trigger(Tag(1)).unwrap().expect("fires");
        assert_eq!(l.promotions(), 1);
        assert!(l.register(Tag(4), put(), 1).is_ok());
    }

    #[test]
    fn promotion_preserves_counter_and_overrides() {
        let mut l = TriggerList::new(LookupKind::Associative { ways: 1 });
        l.register(Tag(1), put(), 1).unwrap();
        // Early triggers accumulate in a spilled counter-only entry.
        l.trigger(Tag(7)).unwrap();
        l.trigger(Tag(7)).unwrap();
        assert_eq!(l.overflow_len(), 1);
        // Retire the CAM entry: the spilled counter promotes intact.
        l.trigger(Tag(1)).unwrap().expect("fires");
        assert_eq!((l.cam_len(), l.overflow_len()), (1, 0));
        assert_eq!(l.entry(Tag(7)).unwrap().counter, 2);
        // A late post over the promoted counter fires immediately.
        let fired = l.register(Tag(7), put(), 2).unwrap().expect("fires");
        assert_eq!(fired.counter, 2);
    }

    #[test]
    fn unbounded_lookups_accept_many_entries() {
        for kind in [LookupKind::LinearList, LookupKind::HashTable] {
            let mut l = TriggerList::new(kind);
            for i in 0..1000 {
                l.register(Tag(i), put(), 1).unwrap();
            }
            assert_eq!(l.active(), 1000);
            assert!(l.match_cost() >= kind.match_cost(0));
        }
    }

    #[test]
    fn retrigger_after_fire_allocates_fresh_counter_entry() {
        let mut l = list();
        l.register(Tag(1), put(), 1).unwrap();
        l.trigger(Tag(1)).unwrap().expect("fires");
        // Late/extra write: becomes an early allocation for a future post.
        assert_eq!(l.trigger(Tag(1)).unwrap(), None);
        assert_eq!(l.entry(Tag(1)).unwrap().counter, 1);
        assert_eq!(l.entry(Tag(1)).unwrap().op, None);
    }

    #[test]
    fn partitioned_cam_splits_ways_and_isolates_tenants() {
        // 4 ways over 2 partitions: 2 ways each. Even tags -> partition 0,
        // odd tags -> partition 1.
        let parts = TriggerPartitions {
            partitions: 2,
            depth: None,
        };
        let mut l = TriggerList::with_partitions(LookupKind::Associative { ways: 4 }, 64, parts);
        assert_eq!(l.cam_capacity_of(0), 2);
        assert_eq!(l.cam_capacity_of(1), 2);
        // Fill partition 0 (even tags): the third even entry spills even
        // though partition 1's CAM share is empty — isolation.
        for t in [0, 2, 4] {
            l.register(Tag(t), put(), 1).unwrap();
        }
        assert_eq!(l.spills(), 1);
        assert!(l.resolves_to_overflow(Tag(4)));
        assert_eq!(l.active_in_partition(0), 3);
        // Partition 1 still has CAM room.
        l.register(Tag(1), put(), 1).unwrap();
        assert!(!l.resolves_to_overflow(Tag(1)));
        assert_eq!(l.spills(), 1);
        // Retiring a partition-0 CAM entry promotes partition 0's spill.
        l.trigger(Tag(0)).unwrap().expect("fires");
        assert_eq!(l.promotions(), 1);
        assert!(!l.resolves_to_overflow(Tag(4)));
    }

    #[test]
    fn uneven_ways_distribute_extra_to_low_partitions() {
        let parts = TriggerPartitions {
            partitions: 3,
            depth: None,
        };
        let l = TriggerList::with_partitions(LookupKind::Associative { ways: 16 }, 64, parts);
        assert_eq!(
            (
                l.cam_capacity_of(0),
                l.cam_capacity_of(1),
                l.cam_capacity_of(2)
            ),
            (6, 5, 5)
        );
        assert_eq!(l.partition_of(Tag(7)), 1);
    }

    #[test]
    fn admission_depth_sheds_new_entries_never_panics() {
        let parts = TriggerPartitions {
            partitions: 2,
            depth: Some(2),
        };
        let mut l = TriggerList::with_partitions(LookupKind::Associative { ways: 4 }, 64, parts);
        l.register(Tag(0), put(), 2).unwrap();
        l.register(Tag(2), put(), 1).unwrap();
        // Partition 0 is at depth: new registrations and early triggers
        // are shed; partition 1 is unaffected.
        assert_eq!(
            l.register(Tag(4), put(), 1),
            Err(TriggerError::AdmissionShed {
                tag: Tag(4),
                partition: 0,
                depth: 2,
            })
        );
        assert!(matches!(
            l.trigger(Tag(6)),
            Err(TriggerError::AdmissionShed { .. })
        ));
        assert_eq!(l.admission_shed(), 2);
        assert_eq!(l.rejections(), (0, 0, 0), "shed is not a rejection");
        l.register(Tag(1), put(), 1).unwrap();
        // Writes to *existing* entries are never shed.
        assert_eq!(l.trigger(Tag(0)).unwrap(), None);
        // Retiring an entry frees admission room again.
        l.trigger(Tag(2)).unwrap().expect("fires");
        assert!(l.register(Tag(4), put(), 1).is_ok());
    }

    #[test]
    fn zero_way_partitions_are_spill_only() {
        // More partitions than ways: partition 2 has no CAM share, so its
        // entries live (and fire) entirely from the overflow table.
        let parts = TriggerPartitions {
            partitions: 3,
            depth: None,
        };
        let mut l = TriggerList::with_partitions(LookupKind::Associative { ways: 2 }, 64, parts);
        assert_eq!(l.cam_capacity_of(2), 0);
        l.register(Tag(2), put(), 1).unwrap();
        assert!(l.resolves_to_overflow(Tag(2)));
        assert_eq!(l.spills(), 1);
        let fired = l.trigger(Tag(2)).unwrap().expect("fires from overflow");
        assert_eq!(fired.tag, Tag(2));
    }

    #[test]
    fn single_partition_matches_unpartitioned_behavior() {
        // TriggerPartitions::NONE must be bit-identical to the plain
        // constructor across a mixed spill/promote/fire interleaving.
        let mut a = TriggerList::with_overflow(LookupKind::Associative { ways: 2 }, 4);
        let mut b = TriggerList::with_partitions(
            LookupKind::Associative { ways: 2 },
            4,
            TriggerPartitions::NONE,
        );
        for l in [&mut a, &mut b] {
            for t in 0..5 {
                l.register(Tag(t), put(), 1).unwrap();
            }
            l.trigger(Tag(0)).unwrap().expect("fires");
            l.trigger(Tag(3)).unwrap().expect("fires");
        }
        assert_eq!(a.pending_entries(), b.pending_entries());
        assert_eq!(a.spills(), b.spills());
        assert_eq!(a.promotions(), b.promotions());
        assert_eq!(
            (a.cam_len(), a.overflow_len()),
            (b.cam_len(), b.overflow_len())
        );
    }

    #[test]
    fn partition_config_validation() {
        assert!(TriggerPartitions::NONE.validate().is_ok());
        assert!(TriggerPartitions {
            partitions: 0,
            depth: None
        }
        .validate()
        .is_err());
        assert!(TriggerPartitions {
            partitions: 4,
            depth: Some(0)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn mixed_granularity_pairs_example() {
        // §4.2.3: one message per *pair* of work-items — threshold 2, half
        // as many tags. Simulate 8 work-items over 4 tags.
        let mut l = list();
        for t in 0..4 {
            l.register(Tag(t), put(), 2).unwrap();
        }
        let mut fired = 0;
        for wi in 0..8u64 {
            if l.trigger(Tag(wi / 2)).unwrap().is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 4);
        assert_eq!(l.active(), 0);
    }
}
