//! The trigger list: tag-matched counters gating pre-registered operations.
//!
//! This module implements the semantics of §3.1 (tag / counter / threshold
//! matching) and §3.2 (relaxed synchronization — GPU triggers may precede
//! the CPU post). It is pure state: the [`crate::nic::Nic`] wraps it with
//! FIFO timing and DMA/fabric effects, so every matching rule is unit- and
//! property-testable here in isolation.

use crate::dynamic::DynFields;
use crate::lookup::LookupKind;
use crate::op::{NetOp, Tag};
use std::collections::HashMap;
use std::fmt;

/// One trigger entry (§3.1): "Network Operation, Tag, Counter, Threshold".
///
/// Under relaxed synchronization the operation and threshold may be absent:
/// the entry then only accumulates counts until the CPU's post arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerEntry {
    /// Unique identifier for this entry.
    pub tag: Tag,
    /// Number of matching trigger-address writes collected so far.
    pub counter: u64,
    /// Writes to collect before initiating the operation; `None` until the
    /// CPU registers the operation (§3.2).
    pub threshold: Option<u64>,
    /// The pre-built network operation; `None` until registered.
    pub op: Option<NetOp>,
    /// Field overrides accumulated from dynamic trigger writes (§3.4
    /// extension); applied to `op` at fire time.
    pub overrides: DynFields,
}

impl TriggerEntry {
    /// True if the entry is armed (has an operation) and its counter has
    /// reached the threshold.
    fn ready(&self) -> bool {
        match (self.threshold, &self.op) {
            (Some(t), Some(_)) => self.counter >= t,
            _ => false,
        }
    }
}

/// A trigger entry whose condition has been met: the NIC should now execute
/// `op`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fired {
    /// Tag of the entry that fired.
    pub tag: Tag,
    /// Counter value at fire time.
    pub counter: u64,
    /// The operation to execute.
    pub op: NetOp,
}

/// Registration/trigger failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriggerError {
    /// An armed entry with this tag already exists; tags identify entries
    /// uniquely (§3.1).
    DuplicateTag(Tag),
    /// The associative lookup is full: the paper's prototype supports at
    /// most 16 simultaneously active entries (§3.3).
    CapacityExceeded {
        /// The lookup's capacity.
        capacity: usize,
        /// The tag that could not be inserted.
        tag: Tag,
    },
    /// A registration supplied a zero threshold, which would make the
    /// operation fire before any trigger — use a direct post instead.
    ZeroThreshold(Tag),
}

impl fmt::Display for TriggerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerError::DuplicateTag(t) => write!(f, "trigger entry {t} already armed"),
            TriggerError::CapacityExceeded { capacity, tag } => write!(
                f,
                "trigger list full ({capacity} entries) inserting {tag}; \
                 use LinearList/HashTable lookup or retire entries first"
            ),
            TriggerError::ZeroThreshold(t) => {
                write!(f, "{t}: threshold must be >= 1 (use a direct post)")
            }
        }
    }
}

impl std::error::Error for TriggerError {}

/// The NIC's list of registered trigger entries.
///
/// Functionally a map from tag to entry regardless of [`LookupKind`]; the
/// lookup kind contributes the per-match *cost* (consumed by the NIC's FIFO
/// drain loop) and the *capacity* constraint.
#[derive(Debug)]
pub struct TriggerList {
    entries: HashMap<u64, TriggerEntry>,
    kind: LookupKind,
    fired_total: u64,
    early_allocations: u64,
    rejected_capacity: u64,
    rejected_duplicate: u64,
    rejected_zero_threshold: u64,
}

impl TriggerList {
    /// An empty list using `kind` for lookups.
    pub fn new(kind: LookupKind) -> Self {
        TriggerList {
            entries: HashMap::new(),
            kind,
            fired_total: 0,
            early_allocations: 0,
            rejected_capacity: 0,
            rejected_duplicate: 0,
            rejected_zero_threshold: 0,
        }
    }

    /// Number of simultaneously active entries.
    pub fn active(&self) -> usize {
        self.entries.len()
    }

    /// Total operations fired since construction.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Entries allocated by GPU writes before the CPU post (relaxed-sync
    /// path, §3.2).
    pub fn early_allocations(&self) -> u64 {
        self.early_allocations
    }

    /// The lookup implementation in use.
    pub fn lookup_kind(&self) -> LookupKind {
        self.kind
    }

    /// Cost of one tag match at the current occupancy.
    pub fn match_cost(&self) -> gtn_sim::time::SimDuration {
        self.kind.match_cost(self.active())
    }

    /// Borrow an entry (tests and diagnostics).
    pub fn entry(&self, tag: Tag) -> Option<&TriggerEntry> {
        self.entries.get(&tag.0)
    }

    /// Rejected registrations and writes, by cause:
    /// `(capacity_exceeded, duplicate_tag, zero_threshold)`.
    pub fn rejections(&self) -> (u64, u64, u64) {
        (
            self.rejected_capacity,
            self.rejected_duplicate,
            self.rejected_zero_threshold,
        )
    }

    /// Total rejected registrations and writes.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_capacity + self.rejected_duplicate + self.rejected_zero_threshold
    }

    /// Snapshot of the still-pending entries for diagnostics, sorted by
    /// tag: `(tag, counter, threshold, armed)`. A stalled node's list shows
    /// exactly which matches it is still waiting for.
    pub fn pending_entries(&self) -> Vec<(Tag, u64, Option<u64>, bool)> {
        let mut v: Vec<_> = self
            .entries
            .values()
            .map(|e| (e.tag, e.counter, e.threshold, e.op.is_some()))
            .collect();
        v.sort_unstable_by_key(|&(tag, ..)| tag.0);
        v
    }

    fn check_capacity(&mut self, tag: Tag) -> Result<(), TriggerError> {
        if let Some(cap) = self.kind.capacity() {
            if self.entries.len() >= cap {
                self.rejected_capacity += 1;
                return Err(TriggerError::CapacityExceeded { capacity: cap, tag });
            }
        }
        Ok(())
    }

    /// CPU-side registration of a triggered operation (§3.1 step 1 /
    /// Fig. 6 `TrigPut`).
    ///
    /// If a counter-only entry for `tag` already exists (the GPU triggered
    /// early — §3.2), the operation attaches to the existing counter; if
    /// that counter has already reached `threshold`, the operation fires
    /// immediately and `Ok(Some(Fired))` is returned.
    pub fn register(
        &mut self,
        tag: Tag,
        op: NetOp,
        threshold: u64,
    ) -> Result<Option<Fired>, TriggerError> {
        if threshold == 0 {
            self.rejected_zero_threshold += 1;
            return Err(TriggerError::ZeroThreshold(tag));
        }
        match self.entries.get_mut(&tag.0) {
            Some(e) if e.op.is_some() => {
                self.rejected_duplicate += 1;
                Err(TriggerError::DuplicateTag(tag))
            }
            Some(e) => {
                // §3.2: "the new triggered operation is associated with the
                // existing counter. If the counter value is already greater
                // than or equal to the threshold, the network operation is
                // executed immediately."
                e.threshold = Some(threshold);
                e.op = Some(op);
                if e.ready() {
                    let fired = self.take_fired(tag);
                    Ok(Some(fired))
                } else {
                    Ok(None)
                }
            }
            None => {
                self.check_capacity(tag)?;
                self.entries.insert(
                    tag.0,
                    TriggerEntry {
                        tag,
                        counter: 0,
                        threshold: Some(threshold),
                        op: Some(op),
                        overrides: DynFields::NONE,
                    },
                );
                Ok(None)
            }
        }
    }

    /// A tag write popped out of the trigger FIFO (§3.1 step 3).
    ///
    /// Increments the matching entry's counter, allocating a counter-only
    /// entry if the tag is unknown (§3.2). Returns the fired operation if
    /// the threshold is met.
    pub fn trigger(&mut self, tag: Tag) -> Result<Option<Fired>, TriggerError> {
        self.trigger_dyn(tag, DynFields::NONE)
    }

    /// A *dynamic* tag write (§3.4 extension): like [`TriggerList::trigger`]
    /// but carrying field overrides that are merged into the entry and
    /// applied to the template operation at fire time. Later writes win
    /// field-wise.
    pub fn trigger_dyn(
        &mut self,
        tag: Tag,
        fields: DynFields,
    ) -> Result<Option<Fired>, TriggerError> {
        match self.entries.get_mut(&tag.0) {
            Some(e) => {
                e.counter += 1;
                e.overrides.merge(fields);
                if e.ready() {
                    Ok(Some(self.take_fired(tag)))
                } else {
                    Ok(None)
                }
            }
            None => {
                // §3.2: "the NIC allocates a trigger entry for this tag
                // without a corresponding network operation or threshold."
                self.check_capacity(tag)?;
                self.early_allocations += 1;
                self.entries.insert(
                    tag.0,
                    TriggerEntry {
                        tag,
                        counter: 1,
                        threshold: None,
                        op: None,
                        overrides: fields,
                    },
                );
                Ok(None)
            }
        }
    }

    /// Remove a ready entry and produce its `Fired` record. Entries are
    /// one-shot: a fired tag leaves the list (re-triggering the same tag
    /// later allocates a fresh counter-only entry).
    fn take_fired(&mut self, tag: Tag) -> Fired {
        let e = self.entries.remove(&tag.0).expect("ready entry exists");
        self.fired_total += 1;
        let mut op = e.op.expect("ready entry has op");
        e.overrides.apply(&mut op);
        Fired {
            tag,
            counter: e.counter,
            op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_mem::{Addr, NodeId, RegionId};

    fn put() -> NetOp {
        NetOp::Put {
            src: Addr::base(NodeId(0), RegionId(0)),
            len: 64,
            target: NodeId(1),
            dst: Addr::base(NodeId(1), RegionId(0)),
            notify: None,
            completion: None,
        }
    }

    fn list() -> TriggerList {
        TriggerList::new(LookupKind::Associative { ways: 16 })
    }

    #[test]
    fn threshold_one_fires_on_first_trigger() {
        let mut l = list();
        assert_eq!(l.register(Tag(1), put(), 1), Ok(None));
        let fired = l.trigger(Tag(1)).unwrap().expect("fires");
        assert_eq!(fired.tag, Tag(1));
        assert_eq!(fired.counter, 1);
        assert_eq!(l.active(), 0, "entries are one-shot");
        assert_eq!(l.fired_total(), 1);
    }

    #[test]
    fn threshold_n_counts_writes() {
        let mut l = list();
        l.register(Tag(5), put(), 3).unwrap();
        assert_eq!(l.trigger(Tag(5)).unwrap(), None);
        assert_eq!(l.trigger(Tag(5)).unwrap(), None);
        let fired = l.trigger(Tag(5)).unwrap().expect("third write fires");
        assert_eq!(fired.counter, 3);
    }

    #[test]
    fn relaxed_sync_trigger_before_post() {
        // §3.2 scenario: GPU triggers twice, then the CPU posts with
        // threshold 2 -> fires immediately at registration.
        let mut l = list();
        assert_eq!(l.trigger(Tag(9)).unwrap(), None);
        assert_eq!(l.trigger(Tag(9)).unwrap(), None);
        assert_eq!(l.early_allocations(), 1);
        assert_eq!(l.entry(Tag(9)).unwrap().counter, 2);
        assert_eq!(l.entry(Tag(9)).unwrap().op, None);
        let fired = l
            .register(Tag(9), put(), 2)
            .unwrap()
            .expect("fires at post");
        assert_eq!(fired.counter, 2);
        assert_eq!(l.active(), 0);
    }

    #[test]
    fn relaxed_sync_partial_count_waits_for_remaining_triggers() {
        let mut l = list();
        l.trigger(Tag(9)).unwrap();
        assert_eq!(l.register(Tag(9), put(), 3).unwrap(), None, "1 of 3");
        assert_eq!(l.trigger(Tag(9)).unwrap(), None, "2 of 3");
        assert!(l.trigger(Tag(9)).unwrap().is_some(), "3 of 3 fires");
    }

    #[test]
    fn counter_overshoot_fires_once_at_post() {
        let mut l = list();
        for _ in 0..10 {
            l.trigger(Tag(2)).unwrap();
        }
        let fired = l.register(Tag(2), put(), 4).unwrap().expect("fires");
        assert_eq!(fired.counter, 10, "counter may exceed threshold");
        assert_eq!(l.fired_total(), 1);
    }

    #[test]
    fn duplicate_armed_tag_rejected() {
        let mut l = list();
        l.register(Tag(1), put(), 1).unwrap();
        assert_eq!(
            l.register(Tag(1), put(), 1),
            Err(TriggerError::DuplicateTag(Tag(1)))
        );
    }

    #[test]
    fn zero_threshold_rejected() {
        let mut l = list();
        assert_eq!(
            l.register(Tag(1), put(), 0),
            Err(TriggerError::ZeroThreshold(Tag(1)))
        );
    }

    #[test]
    fn associative_capacity_enforced_for_posts_and_early_triggers() {
        let mut l = TriggerList::new(LookupKind::Associative { ways: 2 });
        l.register(Tag(1), put(), 1).unwrap();
        l.register(Tag(2), put(), 1).unwrap();
        assert!(matches!(
            l.register(Tag(3), put(), 1),
            Err(TriggerError::CapacityExceeded { capacity: 2, .. })
        ));
        assert!(matches!(
            l.trigger(Tag(4)),
            Err(TriggerError::CapacityExceeded { .. })
        ));
        // Firing an entry frees a slot.
        l.trigger(Tag(1)).unwrap().expect("fires");
        assert!(l.register(Tag(3), put(), 1).is_ok());
    }

    #[test]
    fn unbounded_lookups_accept_many_entries() {
        for kind in [LookupKind::LinearList, LookupKind::HashTable] {
            let mut l = TriggerList::new(kind);
            for i in 0..1000 {
                l.register(Tag(i), put(), 1).unwrap();
            }
            assert_eq!(l.active(), 1000);
            assert!(l.match_cost() >= kind.match_cost(0));
        }
    }

    #[test]
    fn retrigger_after_fire_allocates_fresh_counter_entry() {
        let mut l = list();
        l.register(Tag(1), put(), 1).unwrap();
        l.trigger(Tag(1)).unwrap().expect("fires");
        // Late/extra write: becomes an early allocation for a future post.
        assert_eq!(l.trigger(Tag(1)).unwrap(), None);
        assert_eq!(l.entry(Tag(1)).unwrap().counter, 1);
        assert_eq!(l.entry(Tag(1)).unwrap().op, None);
    }

    #[test]
    fn mixed_granularity_pairs_example() {
        // §4.2.3: one message per *pair* of work-items — threshold 2, half
        // as many tags. Simulate 8 work-items over 4 tags.
        let mut l = list();
        for t in 0..4 {
            l.register(Tag(t), put(), 2).unwrap();
        }
        let mut fired = 0;
        for wi in 0..8u64 {
            if l.trigger(Tag(wi / 2)).unwrap().is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 4);
        assert_eq!(l.active(), 0);
    }
}
