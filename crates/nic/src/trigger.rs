//! The trigger list: tag-matched counters gating pre-registered operations.
//!
//! This module implements the semantics of §3.1 (tag / counter / threshold
//! matching) and §3.2 (relaxed synchronization — GPU triggers may precede
//! the CPU post). It is pure state: the [`crate::nic::Nic`] wraps it with
//! FIFO timing and DMA/fabric effects, so every matching rule is unit- and
//! property-testable here in isolation.
//!
//! ### Spill to host memory
//!
//! A capacity-bounded lookup (the paper's 16-way CAM, §3.3) no longer
//! rejects inserts outright: entries beyond the CAM's capacity **spill**
//! into a host-memory overflow table, matching Portals-4's
//! spill-to-host handling of resource exhaustion. Spilled entries keep
//! exact tag-match semantics — only the *match cost* differs (the NIC
//! charges [`crate::config::NicConfig::spill_match_extra_ns`] for tags
//! that resolve to the overflow table). As CAM entries retire, spilled
//! entries are **promoted** back in, lowest tag first (deterministic).
//! Only when the overflow table itself is full does registration fail
//! with [`TriggerError::CapacityExceeded`].

use crate::dynamic::DynFields;
use crate::lookup::LookupKind;
use crate::op::{NetOp, Tag};
use std::collections::HashMap;
use std::fmt;

/// One trigger entry (§3.1): "Network Operation, Tag, Counter, Threshold".
///
/// Under relaxed synchronization the operation and threshold may be absent:
/// the entry then only accumulates counts until the CPU's post arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerEntry {
    /// Unique identifier for this entry.
    pub tag: Tag,
    /// Number of matching trigger-address writes collected so far.
    pub counter: u64,
    /// Writes to collect before initiating the operation; `None` until the
    /// CPU registers the operation (§3.2).
    pub threshold: Option<u64>,
    /// The pre-built network operation; `None` until registered.
    pub op: Option<NetOp>,
    /// Field overrides accumulated from dynamic trigger writes (§3.4
    /// extension); applied to `op` at fire time.
    pub overrides: DynFields,
}

impl TriggerEntry {
    /// True if the entry is armed (has an operation) and its counter has
    /// reached the threshold.
    fn ready(&self) -> bool {
        match (self.threshold, &self.op) {
            (Some(t), Some(_)) => self.counter >= t,
            _ => false,
        }
    }
}

/// A trigger entry whose condition has been met: the NIC should now execute
/// `op`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fired {
    /// Tag of the entry that fired.
    pub tag: Tag,
    /// Counter value at fire time.
    pub counter: u64,
    /// The operation to execute.
    pub op: NetOp,
}

/// Registration/trigger failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriggerError {
    /// An armed entry with this tag already exists; tags identify entries
    /// uniquely (§3.1).
    DuplicateTag(Tag),
    /// Both the associative lookup (§3.3) *and* the host-memory overflow
    /// table are full: the NIC genuinely has nowhere left to put the
    /// entry.
    CapacityExceeded {
        /// Total capacity (CAM ways + overflow table).
        capacity: usize,
        /// The tag that could not be inserted.
        tag: Tag,
    },
    /// A registration supplied a zero threshold, which would make the
    /// operation fire before any trigger — use a direct post instead.
    ZeroThreshold(Tag),
}

impl fmt::Display for TriggerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerError::DuplicateTag(t) => write!(f, "trigger entry {t} already armed"),
            TriggerError::CapacityExceeded { capacity, tag } => write!(
                f,
                "trigger list full (CAM + overflow, {capacity} entries) inserting {tag}; \
                 raise the overflow capacity or retire entries first"
            ),
            TriggerError::ZeroThreshold(t) => {
                write!(f, "{t}: threshold must be >= 1 (use a direct post)")
            }
        }
    }
}

impl std::error::Error for TriggerError {}

/// Default capacity of the host-memory overflow (spill) table. Host
/// memory is cheap: generous enough that only a pathological workload
/// ever sees [`TriggerError::CapacityExceeded`].
pub const DEFAULT_OVERFLOW_CAPACITY: usize = 65_536;

/// The NIC's list of registered trigger entries.
///
/// Functionally a map from tag to entry regardless of [`LookupKind`]; the
/// lookup kind contributes the per-match *cost* (consumed by the NIC's FIFO
/// drain loop) and the *capacity* of the fast CAM tier. Entries past that
/// capacity live in the host-memory overflow table (see the module docs).
#[derive(Debug)]
pub struct TriggerList {
    entries: HashMap<u64, TriggerEntry>,
    /// Host-memory spill table: same semantics, slower matches.
    overflow: HashMap<u64, TriggerEntry>,
    overflow_capacity: usize,
    kind: LookupKind,
    fired_total: u64,
    early_allocations: u64,
    spills: u64,
    promotions: u64,
    rejected_capacity: u64,
    rejected_duplicate: u64,
    rejected_zero_threshold: u64,
}

impl TriggerList {
    /// An empty list using `kind` for lookups, with the default overflow
    /// table capacity.
    pub fn new(kind: LookupKind) -> Self {
        Self::with_overflow(kind, DEFAULT_OVERFLOW_CAPACITY)
    }

    /// An empty list with an explicit overflow-table capacity (tests and
    /// resource-pressure scenarios shrink it to force exhaustion).
    pub fn with_overflow(kind: LookupKind, overflow_capacity: usize) -> Self {
        TriggerList {
            entries: HashMap::new(),
            overflow: HashMap::new(),
            overflow_capacity,
            kind,
            fired_total: 0,
            early_allocations: 0,
            spills: 0,
            promotions: 0,
            rejected_capacity: 0,
            rejected_duplicate: 0,
            rejected_zero_threshold: 0,
        }
    }

    /// Number of simultaneously active entries (CAM + overflow).
    pub fn active(&self) -> usize {
        self.entries.len() + self.overflow.len()
    }

    /// Entries currently resident in the fast (CAM) tier.
    pub fn cam_len(&self) -> usize {
        self.entries.len()
    }

    /// Entries currently spilled to the host-memory overflow table.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Total entries that spilled to the overflow table.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Total entries promoted from the overflow table back into the CAM.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Total operations fired since construction.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Entries allocated by GPU writes before the CPU post (relaxed-sync
    /// path, §3.2).
    pub fn early_allocations(&self) -> u64 {
        self.early_allocations
    }

    /// The lookup implementation in use.
    pub fn lookup_kind(&self) -> LookupKind {
        self.kind
    }

    /// Cost of one tag match at the current occupancy.
    pub fn match_cost(&self) -> gtn_sim::time::SimDuration {
        self.kind.match_cost(self.active())
    }

    /// True if matching `tag` would touch the host-memory overflow table:
    /// either the entry lives there, or the tag is unknown and a full CAM
    /// would force its allocation to spill. The NIC charges the spill
    /// surcharge for such matches.
    pub fn resolves_to_overflow(&self, tag: Tag) -> bool {
        if self.entries.contains_key(&tag.0) {
            return false;
        }
        self.overflow.contains_key(&tag.0) || self.cam_full()
    }

    fn cam_full(&self) -> bool {
        self.kind
            .capacity()
            .is_some_and(|cap| self.entries.len() >= cap)
    }

    /// Borrow an entry (tests and diagnostics).
    pub fn entry(&self, tag: Tag) -> Option<&TriggerEntry> {
        self.entries
            .get(&tag.0)
            .or_else(|| self.overflow.get(&tag.0))
    }

    /// Rejected registrations and writes, by cause:
    /// `(capacity_exceeded, duplicate_tag, zero_threshold)`.
    pub fn rejections(&self) -> (u64, u64, u64) {
        (
            self.rejected_capacity,
            self.rejected_duplicate,
            self.rejected_zero_threshold,
        )
    }

    /// Total rejected registrations and writes.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_capacity + self.rejected_duplicate + self.rejected_zero_threshold
    }

    /// Snapshot of the still-pending entries for diagnostics, sorted by
    /// tag: `(tag, counter, threshold, armed)`. A stalled node's list shows
    /// exactly which matches it is still waiting for.
    pub fn pending_entries(&self) -> Vec<(Tag, u64, Option<u64>, bool)> {
        let mut v: Vec<_> = self
            .entries
            .values()
            .chain(self.overflow.values())
            .map(|e| (e.tag, e.counter, e.threshold, e.op.is_some()))
            .collect();
        v.sort_unstable_by_key(|&(tag, ..)| tag.0);
        v
    }

    fn entry_mut(&mut self, tag: Tag) -> Option<&mut TriggerEntry> {
        if self.entries.contains_key(&tag.0) {
            self.entries.get_mut(&tag.0)
        } else {
            self.overflow.get_mut(&tag.0)
        }
    }

    /// Place a brand-new entry: CAM while it has room, otherwise spill to
    /// the overflow table, otherwise reject.
    fn insert_new(&mut self, tag: Tag, entry: TriggerEntry) -> Result<(), TriggerError> {
        if !self.cam_full() {
            self.entries.insert(tag.0, entry);
            return Ok(());
        }
        if self.overflow.len() < self.overflow_capacity {
            self.spills += 1;
            self.overflow.insert(tag.0, entry);
            return Ok(());
        }
        self.rejected_capacity += 1;
        Err(TriggerError::CapacityExceeded {
            capacity: self.kind.capacity().unwrap_or(0) + self.overflow_capacity,
            tag,
        })
    }

    /// Retiring a CAM entry frees slots: move overflow entries back into
    /// the fast tier, lowest tag first (deterministic order).
    fn promote(&mut self) {
        while !self.cam_full() && !self.overflow.is_empty() {
            let tag = *self.overflow.keys().min().expect("overflow non-empty");
            let e = self.overflow.remove(&tag).expect("key just found");
            self.entries.insert(tag, e);
            self.promotions += 1;
        }
    }

    /// CPU-side registration of a triggered operation (§3.1 step 1 /
    /// Fig. 6 `TrigPut`).
    ///
    /// If a counter-only entry for `tag` already exists (the GPU triggered
    /// early — §3.2), the operation attaches to the existing counter; if
    /// that counter has already reached `threshold`, the operation fires
    /// immediately and `Ok(Some(Fired))` is returned.
    pub fn register(
        &mut self,
        tag: Tag,
        op: NetOp,
        threshold: u64,
    ) -> Result<Option<Fired>, TriggerError> {
        if threshold == 0 {
            self.rejected_zero_threshold += 1;
            return Err(TriggerError::ZeroThreshold(tag));
        }
        match self.entry_mut(tag) {
            Some(e) if e.op.is_some() => {
                self.rejected_duplicate += 1;
                Err(TriggerError::DuplicateTag(tag))
            }
            Some(e) => {
                // §3.2: "the new triggered operation is associated with the
                // existing counter. If the counter value is already greater
                // than or equal to the threshold, the network operation is
                // executed immediately."
                e.threshold = Some(threshold);
                e.op = Some(op);
                if e.ready() {
                    let fired = self.take_fired(tag);
                    Ok(Some(fired))
                } else {
                    Ok(None)
                }
            }
            None => {
                self.insert_new(
                    tag,
                    TriggerEntry {
                        tag,
                        counter: 0,
                        threshold: Some(threshold),
                        op: Some(op),
                        overrides: DynFields::NONE,
                    },
                )?;
                Ok(None)
            }
        }
    }

    /// A tag write popped out of the trigger FIFO (§3.1 step 3).
    ///
    /// Increments the matching entry's counter, allocating a counter-only
    /// entry if the tag is unknown (§3.2). Returns the fired operation if
    /// the threshold is met.
    pub fn trigger(&mut self, tag: Tag) -> Result<Option<Fired>, TriggerError> {
        self.trigger_dyn(tag, DynFields::NONE)
    }

    /// A *dynamic* tag write (§3.4 extension): like [`TriggerList::trigger`]
    /// but carrying field overrides that are merged into the entry and
    /// applied to the template operation at fire time. Later writes win
    /// field-wise.
    pub fn trigger_dyn(
        &mut self,
        tag: Tag,
        fields: DynFields,
    ) -> Result<Option<Fired>, TriggerError> {
        match self.entry_mut(tag) {
            Some(e) => {
                e.counter += 1;
                e.overrides.merge(fields);
                if e.ready() {
                    Ok(Some(self.take_fired(tag)))
                } else {
                    Ok(None)
                }
            }
            None => {
                // §3.2: "the NIC allocates a trigger entry for this tag
                // without a corresponding network operation or threshold."
                self.insert_new(
                    tag,
                    TriggerEntry {
                        tag,
                        counter: 1,
                        threshold: None,
                        op: None,
                        overrides: fields,
                    },
                )?;
                self.early_allocations += 1;
                Ok(None)
            }
        }
    }

    /// Remove a ready entry and produce its `Fired` record. Entries are
    /// one-shot: a fired tag leaves the list (re-triggering the same tag
    /// later allocates a fresh counter-only entry). Retiring a CAM entry
    /// promotes waiting overflow entries into the freed slots.
    fn take_fired(&mut self, tag: Tag) -> Fired {
        let e = self
            .entries
            .remove(&tag.0)
            .or_else(|| self.overflow.remove(&tag.0))
            .expect("ready entry exists");
        self.promote();
        self.fired_total += 1;
        let mut op = e.op.expect("ready entry has op");
        e.overrides.apply(&mut op);
        Fired {
            tag,
            counter: e.counter,
            op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_mem::{Addr, NodeId, RegionId};

    fn put() -> NetOp {
        NetOp::Put {
            src: Addr::base(NodeId(0), RegionId(0)),
            len: 64,
            target: NodeId(1),
            dst: Addr::base(NodeId(1), RegionId(0)),
            notify: None,
            completion: None,
        }
    }

    fn list() -> TriggerList {
        TriggerList::new(LookupKind::Associative { ways: 16 })
    }

    #[test]
    fn threshold_one_fires_on_first_trigger() {
        let mut l = list();
        assert_eq!(l.register(Tag(1), put(), 1), Ok(None));
        let fired = l.trigger(Tag(1)).unwrap().expect("fires");
        assert_eq!(fired.tag, Tag(1));
        assert_eq!(fired.counter, 1);
        assert_eq!(l.active(), 0, "entries are one-shot");
        assert_eq!(l.fired_total(), 1);
    }

    #[test]
    fn threshold_n_counts_writes() {
        let mut l = list();
        l.register(Tag(5), put(), 3).unwrap();
        assert_eq!(l.trigger(Tag(5)).unwrap(), None);
        assert_eq!(l.trigger(Tag(5)).unwrap(), None);
        let fired = l.trigger(Tag(5)).unwrap().expect("third write fires");
        assert_eq!(fired.counter, 3);
    }

    #[test]
    fn relaxed_sync_trigger_before_post() {
        // §3.2 scenario: GPU triggers twice, then the CPU posts with
        // threshold 2 -> fires immediately at registration.
        let mut l = list();
        assert_eq!(l.trigger(Tag(9)).unwrap(), None);
        assert_eq!(l.trigger(Tag(9)).unwrap(), None);
        assert_eq!(l.early_allocations(), 1);
        assert_eq!(l.entry(Tag(9)).unwrap().counter, 2);
        assert_eq!(l.entry(Tag(9)).unwrap().op, None);
        let fired = l
            .register(Tag(9), put(), 2)
            .unwrap()
            .expect("fires at post");
        assert_eq!(fired.counter, 2);
        assert_eq!(l.active(), 0);
    }

    #[test]
    fn relaxed_sync_partial_count_waits_for_remaining_triggers() {
        let mut l = list();
        l.trigger(Tag(9)).unwrap();
        assert_eq!(l.register(Tag(9), put(), 3).unwrap(), None, "1 of 3");
        assert_eq!(l.trigger(Tag(9)).unwrap(), None, "2 of 3");
        assert!(l.trigger(Tag(9)).unwrap().is_some(), "3 of 3 fires");
    }

    #[test]
    fn counter_overshoot_fires_once_at_post() {
        let mut l = list();
        for _ in 0..10 {
            l.trigger(Tag(2)).unwrap();
        }
        let fired = l.register(Tag(2), put(), 4).unwrap().expect("fires");
        assert_eq!(fired.counter, 10, "counter may exceed threshold");
        assert_eq!(l.fired_total(), 1);
    }

    #[test]
    fn duplicate_armed_tag_rejected() {
        let mut l = list();
        l.register(Tag(1), put(), 1).unwrap();
        assert_eq!(
            l.register(Tag(1), put(), 1),
            Err(TriggerError::DuplicateTag(Tag(1)))
        );
    }

    #[test]
    fn zero_threshold_rejected() {
        let mut l = list();
        assert_eq!(
            l.register(Tag(1), put(), 0),
            Err(TriggerError::ZeroThreshold(Tag(1)))
        );
    }

    #[test]
    fn associative_overflow_spills_instead_of_rejecting() {
        let mut l = TriggerList::new(LookupKind::Associative { ways: 2 });
        l.register(Tag(1), put(), 1).unwrap();
        l.register(Tag(2), put(), 1).unwrap();
        // Third post and an early trigger both land in the overflow table.
        assert_eq!(l.register(Tag(3), put(), 1), Ok(None));
        assert_eq!(l.trigger(Tag(4)).unwrap(), None);
        assert_eq!((l.cam_len(), l.overflow_len()), (2, 2));
        assert_eq!(l.spills(), 2);
        assert!(l.resolves_to_overflow(Tag(3)));
        assert!(!l.resolves_to_overflow(Tag(1)));
        // Spilled entries keep exact match semantics, firing straight from
        // the overflow table (retiring an overflow entry frees no CAM slot,
        // so nothing promotes yet).
        let fired = l.trigger(Tag(3)).unwrap().expect("spilled entry fires");
        assert_eq!(fired.tag, Tag(3));
        assert_eq!(l.promotions(), 0);
        assert_eq!((l.cam_len(), l.overflow_len()), (2, 1));
        // Retiring a CAM entry promotes the waiting overflow tag into it.
        l.trigger(Tag(1)).unwrap().expect("fires");
        assert_eq!(l.promotions(), 1);
        assert_eq!((l.cam_len(), l.overflow_len()), (2, 0));
        assert!(!l.resolves_to_overflow(Tag(4)));
    }

    #[test]
    fn exhausted_overflow_table_still_rejects() {
        let mut l = TriggerList::with_overflow(LookupKind::Associative { ways: 2 }, 1);
        l.register(Tag(1), put(), 1).unwrap();
        l.register(Tag(2), put(), 1).unwrap();
        l.register(Tag(3), put(), 1).unwrap(); // spills
        assert_eq!(
            l.register(Tag(4), put(), 1),
            Err(TriggerError::CapacityExceeded {
                capacity: 3,
                tag: Tag(4)
            })
        );
        assert!(matches!(
            l.trigger(Tag(5)),
            Err(TriggerError::CapacityExceeded { .. })
        ));
        assert_eq!(l.rejections().0, 2);
        // Firing a CAM entry frees a slot (promoting the spilled entry),
        // after which a new registration fits again.
        l.trigger(Tag(1)).unwrap().expect("fires");
        assert_eq!(l.promotions(), 1);
        assert!(l.register(Tag(4), put(), 1).is_ok());
    }

    #[test]
    fn promotion_preserves_counter_and_overrides() {
        let mut l = TriggerList::new(LookupKind::Associative { ways: 1 });
        l.register(Tag(1), put(), 1).unwrap();
        // Early triggers accumulate in a spilled counter-only entry.
        l.trigger(Tag(7)).unwrap();
        l.trigger(Tag(7)).unwrap();
        assert_eq!(l.overflow_len(), 1);
        // Retire the CAM entry: the spilled counter promotes intact.
        l.trigger(Tag(1)).unwrap().expect("fires");
        assert_eq!((l.cam_len(), l.overflow_len()), (1, 0));
        assert_eq!(l.entry(Tag(7)).unwrap().counter, 2);
        // A late post over the promoted counter fires immediately.
        let fired = l.register(Tag(7), put(), 2).unwrap().expect("fires");
        assert_eq!(fired.counter, 2);
    }

    #[test]
    fn unbounded_lookups_accept_many_entries() {
        for kind in [LookupKind::LinearList, LookupKind::HashTable] {
            let mut l = TriggerList::new(kind);
            for i in 0..1000 {
                l.register(Tag(i), put(), 1).unwrap();
            }
            assert_eq!(l.active(), 1000);
            assert!(l.match_cost() >= kind.match_cost(0));
        }
    }

    #[test]
    fn retrigger_after_fire_allocates_fresh_counter_entry() {
        let mut l = list();
        l.register(Tag(1), put(), 1).unwrap();
        l.trigger(Tag(1)).unwrap().expect("fires");
        // Late/extra write: becomes an early allocation for a future post.
        assert_eq!(l.trigger(Tag(1)).unwrap(), None);
        assert_eq!(l.entry(Tag(1)).unwrap().counter, 1);
        assert_eq!(l.entry(Tag(1)).unwrap().op, None);
    }

    #[test]
    fn mixed_granularity_pairs_example() {
        // §4.2.3: one message per *pair* of work-items — threshold 2, half
        // as many tags. Simulate 8 work-items over 4 tags.
        let mut l = list();
        for t in 0..4 {
            l.register(Tag(t), put(), 2).unwrap();
        }
        let mut fired = 0;
        for wi in 0..8u64 {
            if l.trigger(Tag(wi / 2)).unwrap().is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 4);
        assert_eq!(l.active(), 0);
    }
}
