//! NIC timing configuration.
//!
//! First-order costs of each stage of the NIC pipeline. Defaults are
//! calibrated so the Fig. 8 microbenchmark decomposition reproduces the
//! paper's 2.71 µs (GPU-TN) / 3.76 µs (GDS) / 4.21 µs (HDN) target-side
//! completion times; see EXPERIMENTS.md for the calibration trace.

use crate::lookup::LookupKind;
use crate::reliability::ReliabilityConfig;
use crate::trigger::TriggerPartitions;
use serde::{Deserialize, Serialize};

/// Timing and structural parameters of one NIC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NicConfig {
    /// Host doorbell -> command visible at NIC, nanoseconds (SoC fabric
    /// write, not PCIe).
    pub doorbell_ns: u64,
    /// Command-processor occupancy per host command, nanoseconds.
    pub cmd_process_ns: u64,
    /// GPU MMIO store -> trigger FIFO entry, nanoseconds (§3.1 step 3).
    pub trigger_route_ns: u64,
    /// DMA engine setup per operation, nanoseconds.
    pub dma_setup_ns: u64,
    /// DMA streaming bandwidth from local memory, GB/s (shares the DDR4
    /// channels of Table 2).
    pub dma_gbps: f64,
    /// Target-side processing of an arrived message before payload bytes are
    /// visible in memory, nanoseconds.
    pub rx_process_ns: u64,
    /// Cost of the NIC writing a completion/notification flag, nanoseconds.
    pub flag_write_ns: u64,
    /// Trigger-list lookup implementation (§3.3).
    pub lookup: LookupKind,
    /// Surcharge for parsing a *dynamic* trigger descriptor (§3.4
    /// extension): the write carries operation fields, not just a tag.
    pub dyn_match_extra_ns: u64,
    /// Surcharge for a tag match that resolves to the host-memory
    /// overflow (spill) table instead of the CAM: the CAM-vs-memory
    /// trade-off of §3.3, paid only under trigger-list pressure.
    pub spill_match_extra_ns: u64,
    /// Capacity of the host-memory overflow table backing a full CAM.
    /// Registrations fail with `CapacityExceeded` only once *both* tiers
    /// are full.
    pub trigger_overflow_capacity: usize,
    /// Static multi-tenant partitioning of the trigger CAM plus an
    /// optional per-partition admission depth (entries past it are shed,
    /// never a panic). The default ([`TriggerPartitions::NONE`]) is
    /// bit-identical to an unpartitioned list.
    pub trigger_partitions: TriggerPartitions,
    /// Bounded completion queue: `Some(depth)` makes the cluster glue
    /// attach a `depth`-entry CQ with backpressure to every NIC — a full
    /// ring parks receive commits (the `cq_stall` stage) instead of
    /// overwriting. `None` (default) leaves CQ use to the caller
    /// (`attach_cq`), unbounded as in the seed model.
    pub cq_capacity: Option<u64>,
    /// Modeled host consumer for the bounded CQ: one entry is retired
    /// every `cq_drain_ns`. `0` models a consumer that never drains —
    /// a full ring then starves the receive path permanently (for
    /// resource-starvation diagnostics tests).
    pub cq_drain_ns: u64,
    /// End-to-end ARQ layer (sequence numbers, ACKs, retransmits).
    /// Disabled by default; required when the fabric injects faults.
    pub reliability: ReliabilityConfig,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            doorbell_ns: 100,
            cmd_process_ns: 100,
            trigger_route_ns: 150,
            dma_setup_ns: 100,
            dma_gbps: 136.0,
            rx_process_ns: 100,
            flag_write_ns: 50,
            // The paper's prototype needs <= 16 simultaneous entries, so it
            // adopts the associative lookup (§3.3); that is our default too.
            lookup: LookupKind::Associative { ways: 16 },
            dyn_match_extra_ns: 20,
            // A host-memory table walk costs roughly a DDR round-trip more
            // than the CAM's parallel compare.
            spill_match_extra_ns: 200,
            trigger_overflow_capacity: crate::trigger::DEFAULT_OVERFLOW_CAPACITY,
            trigger_partitions: TriggerPartitions::NONE,
            cq_capacity: None,
            cq_drain_ns: 250,
            reliability: ReliabilityConfig::default(),
        }
    }
}

impl NicConfig {
    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.dma_gbps <= 0.0 {
            return Err(format!("dma_gbps must be positive, got {}", self.dma_gbps));
        }
        if let LookupKind::Associative { ways: 0 } = self.lookup {
            return Err("associative lookup needs at least one way".into());
        }
        if self.cq_capacity == Some(0) {
            return Err("bounded CQ needs at least one slot".into());
        }
        self.trigger_partitions.validate()?;
        self.reliability.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_associative_16() {
        let c = NicConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.lookup, LookupKind::Associative { ways: 16 });
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = NicConfig {
            dma_gbps: -1.0,
            ..NicConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NicConfig {
            lookup: LookupKind::Associative { ways: 0 },
            ..NicConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NicConfig {
            cq_capacity: Some(0),
            ..NicConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NicConfig {
            trigger_partitions: TriggerPartitions {
                partitions: 0,
                depth: None,
            },
            ..NicConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
