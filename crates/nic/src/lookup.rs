//! Trigger-list lookup implementations (§3.3).
//!
//! The paper discusses three ways the NIC can find a trigger entry when a
//! tag write pops out of the FIFO: traversing a linked list (the Portals 4
//! baseline, cheap to build but O(n) per match), a small associative
//! structure (constant time, bounded capacity — the paper's prototype caps
//! at 16 active entries), and a hash table (near-constant time, unbounded).
//!
//! All three are functionally identical; they differ in **per-match cost**
//! and **capacity**, which is exactly what the `abl_trigger_lookup` bench
//! measures under trigger storms from thousands of GPU threads.

use gtn_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Which hardware lookup the NIC implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LookupKind {
    /// Walk the trigger list linearly (Portals-4-style linked list).
    LinearList,
    /// Fully-associative match over at most `ways` simultaneously active
    /// entries (the paper's prototype: `ways = 16`).
    Associative {
        /// Maximum simultaneously active trigger entries.
        ways: u32,
    },
    /// Hash-table lookup; unbounded capacity, small constant cost.
    HashTable,
}

impl LookupKind {
    /// Capacity limit on simultaneously active entries, if any.
    pub fn capacity(self) -> Option<usize> {
        match self {
            LookupKind::Associative { ways } => Some(ways as usize),
            _ => None,
        }
    }

    /// Time for one tag match against a list of `active` entries.
    ///
    /// Costs are first-order hardware estimates: the linear walk pays a
    /// per-entry pointer chase through NIC-local memory (~2 ns/entry), the
    /// associative lookup is a single-cycle CAM probe, and the hash path
    /// pays one hashed index plus a probe.
    pub fn match_cost(self, active: usize) -> SimDuration {
        match self {
            LookupKind::LinearList => {
                SimDuration::from_ns(4) + SimDuration::from_ns(2).times(active as u64)
            }
            LookupKind::Associative { .. } => SimDuration::from_ns(4),
            LookupKind::HashTable => SimDuration::from_ns(8),
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LookupKind::LinearList => "linear",
            LookupKind::Associative { .. } => "associative",
            LookupKind::HashTable => "hash",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities() {
        assert_eq!(LookupKind::LinearList.capacity(), None);
        assert_eq!(LookupKind::Associative { ways: 16 }.capacity(), Some(16));
        assert_eq!(LookupKind::HashTable.capacity(), None);
    }

    #[test]
    fn linear_cost_grows_with_list() {
        let l = LookupKind::LinearList;
        assert!(l.match_cost(100) > l.match_cost(1));
        assert_eq!(l.match_cost(0), SimDuration::from_ns(4));
        assert_eq!(l.match_cost(10), SimDuration::from_ns(24));
    }

    #[test]
    fn associative_and_hash_are_flat() {
        let a = LookupKind::Associative { ways: 16 };
        let h = LookupKind::HashTable;
        assert_eq!(a.match_cost(1), a.match_cost(16));
        assert_eq!(h.match_cost(1), h.match_cost(10_000));
        // CAM beats hash beats long linear walks.
        assert!(a.match_cost(16) < h.match_cost(16));
        assert!(h.match_cost(100) < LookupKind::LinearList.match_cost(100));
    }

    #[test]
    fn names() {
        assert_eq!(LookupKind::LinearList.name(), "linear");
        assert_eq!(LookupKind::Associative { ways: 4 }.name(), "associative");
        assert_eq!(LookupKind::HashTable.name(), "hash");
    }
}
