//! Dynamic communication (§3.4) — the paper's future-work extension,
//! implemented.
//!
//! Base GPU-TN is deliberately static: "buffer locations, message sizes,
//! target nodes, and other important networking metadata are predetermined
//! on the CPU". §3.4 sketches the extension: *"Instead of merely writing a
//! tag to the NIC's trigger address, the GPU could contribute more fields
//! dynamically, such as the input buffer pointer or target node
//! identifier"* — at the cost of extra GPU-side control-flow divergence.
//!
//! [`DynFields`] is that contribution: a small descriptor the GPU stores
//! alongside the tag. The CPU still registers a *template* operation
//! (keeping the serial command-construction work off the GPU); at fire
//! time the NIC patches the template with whatever fields the GPU
//! supplied. Costs are modelled accordingly: a descriptor write is a wider
//! MMIO transaction and the NIC pays a parse surcharge per dynamic match
//! (see [`crate::NicConfig::dyn_match_extra_ns`]).

use crate::op::NetOp;
use gtn_mem::{Addr, NodeId};
use serde::{Deserialize, Serialize};

/// Fields the GPU may override at trigger time. `None` keeps the CPU's
/// template value.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DynFields {
    /// Override the destination node.
    pub target: Option<NodeId>,
    /// Override the local source buffer.
    pub src: Option<Addr>,
    /// Override the remote destination address.
    pub dst: Option<Addr>,
    /// Override the payload length.
    pub len: Option<u64>,
}

impl DynFields {
    /// The empty override set (a plain static trigger).
    pub const NONE: DynFields = DynFields {
        target: None,
        src: None,
        dst: None,
        len: None,
    };

    /// True if no field is overridden.
    pub fn is_empty(&self) -> bool {
        self.target.is_none() && self.src.is_none() && self.dst.is_none() && self.len.is_none()
    }

    /// Merge `later` over `self`: later writes win field-wise. This is the
    /// semantics for threshold > 1 entries — each contributing write may
    /// refine the descriptor, the last write of each field sticks.
    pub fn merge(&mut self, later: DynFields) {
        if later.target.is_some() {
            self.target = later.target;
        }
        if later.src.is_some() {
            self.src = later.src;
        }
        if later.dst.is_some() {
            self.dst = later.dst;
        }
        if later.len.is_some() {
            self.len = later.len;
        }
    }

    /// Patch a template operation with these overrides. Gets keep their
    /// template shape: the dynamic extension targets puts (the §3.4
    /// examples are "input buffer pointer or target node identifier" of an
    /// outbound message).
    pub fn apply(&self, op: &mut NetOp) {
        if self.is_empty() {
            return;
        }
        if let NetOp::Put {
            src,
            len,
            target,
            dst,
            ..
        } = op
        {
            if let Some(t) = self.target {
                *target = t;
            }
            if let Some(s) = self.src {
                *src = s;
            }
            if let Some(d) = self.dst {
                *dst = d;
            }
            if let Some(l) = self.len {
                *len = l;
            }
        }
    }

    /// Size of the MMIO descriptor the GPU writes for these fields, bytes.
    /// A static trigger is a single 8 B store; each supplied field adds a
    /// lane of the descriptor.
    pub fn wire_bytes(&self) -> u64 {
        8 + 8
            * (u64::from(self.target.is_some())
                + u64::from(self.src.is_some())
                + u64::from(self.dst.is_some())
                + u64::from(self.len.is_some()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_mem::RegionId;

    fn put() -> NetOp {
        NetOp::Put {
            src: Addr::base(NodeId(0), RegionId(0)),
            len: 64,
            target: NodeId(1),
            dst: Addr::base(NodeId(1), RegionId(0)),
            notify: None,
            completion: None,
        }
    }

    #[test]
    fn none_is_empty_and_noop() {
        let mut op = put();
        let before = op.clone();
        DynFields::NONE.apply(&mut op);
        assert_eq!(op, before);
        assert!(DynFields::NONE.is_empty());
        assert_eq!(DynFields::NONE.wire_bytes(), 8);
    }

    #[test]
    fn apply_overrides_selected_fields() {
        let mut op = put();
        let f = DynFields {
            target: Some(NodeId(3)),
            len: Some(16),
            ..DynFields::NONE
        };
        assert!(!f.is_empty());
        f.apply(&mut op);
        match op {
            NetOp::Put {
                target, len, src, ..
            } => {
                assert_eq!(target, NodeId(3));
                assert_eq!(len, 16);
                assert_eq!(src, Addr::base(NodeId(0), RegionId(0)), "untouched");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn merge_later_wins_fieldwise() {
        let mut a = DynFields {
            target: Some(NodeId(1)),
            len: Some(8),
            ..DynFields::NONE
        };
        a.merge(DynFields {
            target: Some(NodeId(2)),
            dst: Some(Addr::base(NodeId(2), RegionId(1))),
            ..DynFields::NONE
        });
        assert_eq!(a.target, Some(NodeId(2)), "later write wins");
        assert_eq!(a.len, Some(8), "unmentioned field survives");
        assert!(a.dst.is_some());
    }

    #[test]
    fn gets_are_not_patched() {
        let mut op = NetOp::Get {
            src: Addr::base(NodeId(1), RegionId(0)),
            len: 64,
            target: NodeId(1),
            dst: Addr::base(NodeId(0), RegionId(0)),
            completion: None,
        };
        let before = op.clone();
        DynFields {
            target: Some(NodeId(5)),
            ..DynFields::NONE
        }
        .apply(&mut op);
        assert_eq!(op, before);
    }

    #[test]
    fn wire_bytes_scale_with_fields() {
        let f = DynFields {
            target: Some(NodeId(0)),
            src: Some(Addr::base(NodeId(0), RegionId(0))),
            dst: Some(Addr::base(NodeId(0), RegionId(0))),
            len: Some(1),
        };
        assert_eq!(f.wire_bytes(), 40);
    }
}
