//! Multi-tenant vocabulary for open-loop serving scenarios.
//!
//! Thousands of simulated tenants multiplex small independent jobs onto
//! one cluster. Two mechanisms keep them honest:
//!
//! - **Trigger-list partitions** ([`TenantMap`]): the NIC CAM is sliced
//!   into [`gtn_nic::TriggerPartitions`] equal shares and every tenant is
//!   pinned to one of them. The partition index rides in the *low bits*
//!   of the trigger tag (`tag % partitions`), so the NIC needs no tenant
//!   table — the tag itself routes.
//! - **Admission control** ([`Admission`]): an open-loop generator does
//!   not stop offering work when the cluster saturates, so a bounded
//!   queue sheds arrivals past a configurable depth. Sheds are counted
//!   and reported (stats + `StallReport`), never a panic, and the
//!   counters satisfy strict conservation: every offered job is exactly
//!   one of completed, shed, or failed.

use gtn_nic::Tag;
use gtn_sim::stats::StatSet;

/// Maps tenants onto trigger-list partitions and encodes the mapping
/// into tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantMap {
    /// Simulated tenant population.
    pub tenants: u32,
    /// Trigger-list partitions the NIC is sliced into (>= 1).
    pub partitions: u32,
}

impl TenantMap {
    /// A map of `tenants` tenants over `partitions` partitions.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn new(tenants: u32, partitions: u32) -> Self {
        assert!(tenants >= 1, "need at least one tenant");
        assert!(partitions >= 1, "need at least one partition");
        TenantMap {
            tenants,
            partitions,
        }
    }

    /// The partition tenant `tenant` is pinned to (round-robin).
    pub fn partition_of(&self, tenant: u32) -> u32 {
        tenant % self.partitions
    }

    /// Build the trigger tag for `tenant`'s `seq`-th job: the tenant's
    /// partition in the low bits (`tag % partitions`), the job sequence
    /// number above. Distinct `(tenant, seq)` pairs of the same partition
    /// map to distinct tags.
    pub fn tag(&self, tenant: u32, seq: u64) -> Tag {
        Tag(seq * u64::from(self.partitions) + u64::from(self.partition_of(tenant)))
    }
}

/// Bounded-queue admission control with conservation-checked counters.
///
/// Drive it with [`offer`](Admission::offer) on every arrival, then
/// [`start`](Admission::start) when an admitted job leaves the queue for
/// service and [`finish`](Admission::finish) when service ends.
#[derive(Debug, Clone, Default)]
pub struct Admission {
    /// Max jobs waiting in queue before new arrivals are shed.
    pub queue_depth: usize,
    offered: u64,
    admitted: u64,
    shed: u64,
    completed: u64,
    failed: u64,
    waiting: usize,
    in_service: usize,
    peak_waiting: usize,
}

impl Admission {
    /// Admission control shedding arrivals once `queue_depth` jobs wait.
    pub fn new(queue_depth: usize) -> Self {
        Admission {
            queue_depth,
            ..Admission::default()
        }
    }

    /// One arrival: admitted into the queue (`true`) or shed (`false`).
    pub fn offer(&mut self) -> bool {
        self.offered += 1;
        if self.waiting >= self.queue_depth {
            self.shed += 1;
            return false;
        }
        self.admitted += 1;
        self.waiting += 1;
        self.peak_waiting = self.peak_waiting.max(self.waiting);
        true
    }

    /// Record a shed that happened downstream of the queue (e.g. the
    /// NIC's per-partition depth): counted as offered-and-shed without
    /// ever occupying the queue.
    pub fn offer_shed_downstream(&mut self) {
        self.offered += 1;
        self.shed += 1;
    }

    /// An admitted job is shed after all by a downstream bound (e.g. its
    /// NIC trigger partition was at depth): it leaves the queue and moves
    /// from admitted to shed, keeping conservation intact.
    pub fn shed_admitted(&mut self) {
        debug_assert!(self.waiting > 0, "shed_admitted without a waiting job");
        debug_assert!(self.admitted > 0, "shed_admitted without an admission");
        self.waiting -= 1;
        self.admitted -= 1;
        self.shed += 1;
    }

    /// An admitted job leaves the queue and enters service.
    pub fn start(&mut self) {
        debug_assert!(self.waiting > 0, "start without a waiting job");
        self.waiting -= 1;
        self.in_service += 1;
    }

    /// A job in service ends, successfully (`ok`) or not.
    pub fn finish(&mut self, ok: bool) {
        debug_assert!(self.in_service > 0, "finish without a job in service");
        self.in_service -= 1;
        if ok {
            self.completed += 1;
        } else {
            self.failed += 1;
        }
    }

    /// Jobs offered so far (admitted + shed).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Jobs admitted past the queue-depth check.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Jobs shed (queue full or downstream shed).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Jobs that finished successfully.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Jobs that entered service but failed.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Jobs currently waiting in the queue.
    pub fn waiting(&self) -> usize {
        self.waiting
    }

    /// High-water mark of the queue.
    pub fn peak_waiting(&self) -> usize {
        self.peak_waiting
    }

    /// Strict count conservation once the system drains:
    /// `completed + shed + failed == offered` with nothing in flight.
    pub fn conserved(&self) -> bool {
        self.waiting == 0
            && self.in_service == 0
            && self.completed + self.shed + self.failed == self.offered
    }

    /// Publish the counters into a stat set (integer counters only, so
    /// reports built from them stay bit-deterministic).
    pub fn publish(&self, set: &mut StatSet) {
        set.add("offered", self.offered);
        set.add("admitted", self.admitted);
        set.add("shed", self.shed);
        set.add("completed", self.completed);
        set.add("failed", self.failed);
        set.add("peak_waiting", self.peak_waiting as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_map_routes_partitions_through_tag_low_bits() {
        let map = TenantMap::new(1000, 16);
        assert_eq!(map.partition_of(0), 0);
        assert_eq!(map.partition_of(17), 1);
        for tenant in [0, 3, 17, 999] {
            for seq in [0, 1, 42] {
                let tag = map.tag(tenant, seq);
                assert_eq!(
                    tag.0 % u64::from(map.partitions),
                    u64::from(map.partition_of(tenant)),
                    "tag low bits must carry the partition"
                );
            }
        }
        // Same partition, distinct (tenant, seq) -> distinct tags as long
        // as seqs differ (the serving generator allocates seqs globally).
        assert_ne!(map.tag(0, 1), map.tag(16, 2));
    }

    #[test]
    fn admission_sheds_past_depth_and_conserves_counts() {
        let mut adm = Admission::new(2);
        assert!(adm.offer());
        assert!(adm.offer());
        assert!(!adm.offer(), "third arrival finds the queue full");
        assert_eq!((adm.admitted(), adm.shed()), (2, 1));
        adm.start();
        assert!(adm.offer(), "a started job freed a queue slot");
        adm.finish(true);
        adm.start();
        adm.finish(false);
        adm.start();
        adm.finish(true);
        adm.offer_shed_downstream();
        assert!(adm.conserved(), "completed+shed+failed == offered");
        assert_eq!(adm.offered(), 5);
        assert_eq!(adm.completed(), 2);
        assert_eq!(adm.failed(), 1);
        assert_eq!(adm.shed(), 2);
        assert_eq!(adm.peak_waiting(), 2);
    }

    #[test]
    fn downstream_shed_of_an_admitted_job_conserves() {
        let mut adm = Admission::new(4);
        assert!(adm.offer());
        adm.shed_admitted();
        assert_eq!((adm.admitted(), adm.shed(), adm.waiting()), (0, 1, 0));
        assert!(adm.conserved());
    }

    #[test]
    fn admission_publishes_integer_counters() {
        let mut adm = Admission::new(1);
        adm.offer();
        adm.start();
        adm.finish(true);
        let mut set = StatSet::new();
        adm.publish(&mut set);
        assert_eq!(set.counter("offered"), 1);
        assert_eq!(set.counter("completed"), 1);
        assert_eq!(set.counter("shed"), 0);
    }
}
