//! The assembled cluster: one deterministic event loop over every node's
//! CPU, GPU, and NIC, a shared memory pool, and the star fabric.
//!
//! `Cluster` is the only place components meet. It routes each component's
//! sans-IO outputs to their destinations with the configured interconnect
//! delays (host doorbell → NIC, GPU MMIO trigger store → NIC trigger FIFO,
//! NIC → remote NIC via the fabric, GPU kernel completion → host runtime),
//! and — when enabled — records an **activity log** of the protocol-level
//! moments the evaluation decomposes (kernel enqueue/dispatch/done, doorbell
//! rings, trigger writes, DMA completion, message arrival/commit). The
//! Fig. 8 latency decomposition and several integration tests read that log.

use crate::config::ClusterConfig;
use crate::membership::{Liveness, MembershipView};
use crate::observe::ClusterStats;
use crate::stall::{BlockedOn, NodeStall, StallReason, StallReport};
use gtn_fabric::{CrashComponent, Delivery, Fabric};
use gtn_gpu::{Gpu, GpuEvent, GpuOutput};
use gtn_host::{Cpu, CpuEvent, CpuOutput, HostOp, HostProgram};
use gtn_mem::{MemPool, NodeId};
use gtn_nic::nic::{Nic, NicEvent, NicNote, NicOutput};
use gtn_nic::{DeliveryCause, Tag};
use gtn_sim::engine::RunOutcome;
use gtn_sim::shard::ShardedQueue;
use gtn_sim::stats::StatSet;
use gtn_sim::time::{SimDuration, SimTime};
use gtn_sim::Engine;
use std::collections::HashMap;

/// Cost of the GPU front-end ringing the NIC doorbell at a kernel boundary
/// (the GDS mechanism): a single posted write from the scheduler, no CPU.
const GDS_DOORBELL_NS: u64 = 20;

/// Wire size of one liveness probe: a header-only control message. Charged
/// real fabric latency/bandwidth like everything else, but small enough that
/// heartbeating never meaningfully perturbs data traffic.
const HEARTBEAT_BYTES: u64 = 16;

/// One logged protocol moment.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// When.
    pub at: SimTime,
    /// Which node.
    pub node: u32,
    /// What.
    pub kind: LogKind,
}

/// The protocol moments the evaluation cares about.
#[derive(Debug, Clone, PartialEq)]
pub enum LogKind {
    /// Host runtime finished the launch call; front-end launch begins.
    KernelEnqueued,
    /// Front-end finished launching kernel `kid`; work-groups start.
    KernelDispatched(u64),
    /// Kernel fully complete (teardown included).
    KernelDone {
        /// GPU-assigned kernel id.
        kid: u64,
        /// Launch label.
        label: String,
    },
    /// Host rang the NIC doorbell.
    DoorbellRung,
    /// A trigger-address write was issued (by GPU, CPU, or the GDS
    /// front-end hook) carrying this tag.
    TriggerWrite(u64),
    /// Initiator NIC finished DMA-reading a put's payload (injection
    /// begins; send buffer reusable).
    PutDmaDone,
    /// A message's last packet arrived at this node's NIC.
    MessageArrived,
    /// Payload committed to this node's memory (flags visible).
    MessageCommitted,
    /// This node's host program ran to completion.
    CpuFinished,
    /// The fault plan dropped an attempt of tracked message `seq`.
    MessageDropped {
        /// ARQ sequence number.
        seq: u64,
    },
    /// An attempt of tracked message `seq` was corrupted in flight and
    /// discarded by the receiver.
    MessageCorrupted {
        /// ARQ sequence number.
        seq: u64,
    },
    /// A retry timer expired and attempt `attempt` of `seq` was sent.
    Retransmitted {
        /// ARQ sequence number.
        seq: u64,
        /// Send attempt just made (2 = first retransmit).
        attempt: u32,
    },
    /// Message `seq` was abandoned: its retry budget ran out, or its target
    /// was declared dead and the pending send was failed fast.
    DeliveryFailed {
        /// ARQ sequence number.
        seq: u64,
        /// Total attempts made.
        attempts: u32,
        /// Why delivery was given up on.
        cause: DeliveryCause,
    },
    /// The NIC rejected a trigger registration (rendered error).
    TriggerRejected(String),
    /// A receive commit parked on a full bounded completion queue resumed
    /// after waiting this long (the `cq_stall` stage).
    CqStalled {
        /// Picoseconds the commit was parked.
        waited_ps: u64,
    },
}

/// Outcome of a cluster run.
#[derive(Debug)]
pub struct ClusterResult {
    /// Per-node host-program completion times.
    pub finish_times: Vec<Option<SimTime>>,
    /// Latest completion across nodes (the experiment's measured time).
    pub makespan: SimTime,
    /// True if every node's host program completed. False means deadlock —
    /// a poll that never satisfied, a wait on a kernel that never ran.
    pub completed: bool,
    /// Total events processed.
    pub events: u64,
    /// Structured diagnosis when `completed` is false: who is stuck, on
    /// what, and what the NICs were still doing. `None` iff completed.
    pub stall: Option<StallReport>,
}

impl ClusterResult {
    /// Makespan, asserting completion (panics with diagnostics otherwise).
    pub fn expect_completed(&self) -> SimTime {
        if !self.completed {
            match &self.stall {
                Some(report) => panic!("cluster did not complete\n{report}"),
                None => panic!(
                    "cluster did not complete: finish_times = {:?}",
                    self.finish_times
                ),
            }
        }
        self.makespan
    }
}

#[derive(Debug)]
enum Event {
    Cpu(u32, CpuEvent),
    Gpu(u32, GpuEvent),
    Nic(u32, NicEvent),
    /// Node's host agent broadcasts liveness probes and re-arms (failure
    /// detection only; never scheduled when `config.failure` is off).
    HbTick(u32),
    /// A liveness probe from `from` reaches `to`'s host agent.
    HbArrive {
        to: u32,
        from: u32,
    },
}

/// The node an event fires *on* — the calendar shard that owns it. Every
/// event in the cluster model is anchored to exactly one node (`HbArrive`
/// belongs to the receiving host agent).
fn event_node(ev: &Event) -> u32 {
    match ev {
        Event::Cpu(n, _) | Event::Gpu(n, _) | Event::Nic(n, _) | Event::HbTick(n) => *n,
        Event::HbArrive { to, .. } => *to,
    }
}

/// The execution backend: one flat calendar (the classic sequential
/// path, untouched when `sim_shards` resolves to 1), or node-partitioned
/// sharded calendars k-way merged in exact `(time, seq)` order — see
/// [`ShardedQueue`] for the bit-identity argument. Nodes map to shards
/// round-robin (`node % shards`), so neighbouring ranks land on different
/// shards and a crash in one shard is always observed from another.
// One `Exec` exists per `Cluster`; boxing the flat engine to shrink the
// variant gap would only add an indirection on the hottest dispatch path.
#[allow(clippy::large_enum_variant)]
enum Exec {
    Single(Engine<Event>),
    Sharded {
        queue: ShardedQueue<Event>,
        shards: u32,
    },
}

impl Exec {
    fn schedule_at(&mut self, at: SimTime, ev: Event) {
        match self {
            Exec::Single(engine) => engine.schedule_at(at, ev),
            Exec::Sharded { queue, shards } => {
                let shard = (event_node(&ev) % *shards) as usize;
                queue.schedule_at(shard, at, ev);
            }
        }
    }

    fn step(&mut self) -> Option<(SimTime, Event)> {
        match self {
            Exec::Single(engine) => engine.step(),
            Exec::Sharded { queue, .. } => queue.step(),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            Exec::Single(engine) => engine.now(),
            Exec::Sharded { queue, .. } => queue.now(),
        }
    }

    fn events_processed(&self) -> u64 {
        match self {
            Exec::Single(engine) => engine.events_processed(),
            Exec::Sharded { queue, .. } => queue.events_processed(),
        }
    }

    fn clamped_past_events(&self) -> u64 {
        match self {
            Exec::Single(engine) => engine.clamped_past_events(),
            Exec::Sharded { queue, .. } => queue.clamped_past_events(),
        }
    }

    fn pending(&self) -> usize {
        match self {
            Exec::Single(engine) => engine.pending(),
            Exec::Sharded { queue, .. } => queue.pending(),
        }
    }
}

/// A simulated cluster mid-experiment.
pub struct Cluster {
    config: ClusterConfig,
    mem: MemPool,
    fabric: Fabric,
    cpus: Vec<Cpu>,
    gpus: Vec<Gpu>,
    nics: Vec<Nic>,
    exec: Exec,
    log: Vec<LogRecord>,
    finish_times: Vec<Option<SimTime>>,
    /// GDS hooks: when kernel `label` completes on `node`, ring the NIC
    /// with `tags` (the front-end doorbell of GPUDirect Async).
    gds_hooks: HashMap<(u32, String), Vec<Tag>>,
    /// Per-observer failure-detector state (one view per node; empty logic
    /// unless `config.failure` is enabled).
    views: Vec<MembershipView>,
    /// First death detection: `(peer, detector)`. Set by a detector's lease
    /// sweep, consumed by the run loop to terminate with
    /// [`StallReason::PeerDead`].
    dead_detected: Option<(u32, u32)>,
    /// First suspicion: `(peer, when)` — the first lease sweep that saw any
    /// peer leave [`Liveness::Alive`]. Detection-latency studies read the
    /// `injection → suspect → dead` timeline from this plus
    /// [`Cluster::dead_detected`].
    first_suspect: Option<(u32, SimTime)>,
    /// When the death verdict was reached, for the same timeline.
    dead_at: Option<SimTime>,
    /// Precomputed crash schedule: when each node's *compute* (CPU+GPU)
    /// dies, from `config.fabric.faults` Node specs.
    node_down: Vec<Option<SimTime>>,
    /// When each node's NIC dies (Node or Nic specs — a whole-node crash
    /// takes its NIC with it).
    nic_down: Vec<Option<SimTime>>,
    /// Events silently dropped because their component had crashed.
    crash_suppressed: u64,
}

impl Cluster {
    /// Assemble a cluster.
    ///
    /// `mem` is the pre-populated memory pool (workloads allocate buffers
    /// and write initial data before construction); `programs` holds one
    /// host program per node, started at t = 0.
    ///
    /// # Panics
    /// Panics if the configuration is invalid, `mem` has the wrong node
    /// count, or `programs.len() != n_nodes`.
    pub fn new(config: ClusterConfig, mut mem: MemPool, programs: Vec<HostProgram>) -> Self {
        config.validate().expect("invalid cluster config");
        let n = config.n_nodes as usize;
        assert_eq!(mem.node_count(), n, "memory pool node count mismatch");
        assert_eq!(programs.len(), n, "one host program per node required");

        let cpus: Vec<Cpu> = programs
            .into_iter()
            .map(|p| Cpu::new(config.host.clone(), p))
            .collect();
        let gpus: Vec<Gpu> = (0..n).map(|_| Gpu::new(config.gpu.clone())).collect();
        let mut nics: Vec<Nic> = (0..n)
            .map(|i| Nic::new(NodeId(i as u32), config.nic.clone()))
            .collect();
        // Bounded-CQ mode: every NIC gets a `depth`-entry completion ring
        // with backpressure (full ring parks commits instead of
        // overwriting) and a modeled host consumer (`cq_drain_ns`).
        if let Some(depth) = config.nic.cq_capacity {
            for (i, nic) in nics.iter_mut().enumerate() {
                let cq = gtn_nic::cq::CqDesc::alloc(&mut mem, NodeId(i as u32), depth);
                nic.attach_cq(cq);
            }
        }
        let fabric = Fabric::new(n, config.fabric.clone());

        // Execution backend: a flat calendar, or sharded calendars merged
        // in exact (time, seq) order with the fabric's minimum cross-node
        // latency as the conservative lookahead. Both dispatch the same
        // bit-identical event sequence.
        let shards = config.effective_sim_shards();
        let mut exec = if shards <= 1 {
            Exec::Single(Engine::new())
        } else {
            let lookahead = SimDuration::from_ns(config.fabric.min_cross_node_latency_ns().max(1));
            Exec::Sharded {
                queue: ShardedQueue::new(shards as usize, lookahead),
                shards,
            }
        };
        for node in 0..n as u32 {
            exec.schedule_at(SimTime::ZERO, Event::Cpu(node, CpuEvent::Step));
        }
        // Failure detection: every host agent starts probing at t = 0.
        // Nothing is scheduled when detection is off, so those runs are
        // event-for-event identical to a build without the detector.
        if config.failure.enabled() && n > 1 {
            for node in 0..n as u32 {
                exec.schedule_at(SimTime::ZERO, Event::HbTick(node));
            }
        }
        let node_down = (0..n as u32)
            .map(|i| config.fabric.faults.node_down_at(i).map(SimTime::from_ns))
            .collect();
        let nic_down = (0..n as u32)
            .map(|i| config.fabric.faults.nic_down_at(i).map(SimTime::from_ns))
            .collect();

        Cluster {
            views: (0..n as u32)
                .map(|i| MembershipView::new(i, n as u32))
                .collect(),
            config,
            mem,
            fabric,
            cpus,
            gpus,
            nics,
            exec,
            log: Vec::new(),
            finish_times: vec![None; n],
            gds_hooks: HashMap::new(),
            dead_detected: None,
            first_suspect: None,
            dead_at: None,
            node_down,
            nic_down,
            crash_suppressed: 0,
        }
    }

    /// Attach a completion queue to node `n`'s NIC (the conventional
    /// notification channel; see [`gtn_nic::cq`]).
    pub fn attach_cq(&mut self, n: u32, cq: gtn_nic::cq::CqDesc) {
        self.nics[n as usize].attach_cq(cq);
    }

    /// Register a GDS kernel-boundary doorbell: when `label` completes on
    /// `node`, the GPU front-end writes `tag` to the NIC trigger address —
    /// no CPU on the critical path, but strictly after the kernel boundary.
    pub fn gds_doorbell_on_done(&mut self, node: u32, label: &str, tag: Tag) {
        self.gds_hooks
            .entry((node, label.to_owned()))
            .or_default()
            .push(tag);
    }

    /// The shared memory pool.
    pub fn mem(&self) -> &MemPool {
        &self.mem
    }

    /// Mutable access to memory (verification after a run).
    pub fn mem_mut(&mut self) -> &mut MemPool {
        &mut self.mem
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Node `n`'s NIC (stats, trigger diagnostics).
    pub fn nic(&self, n: u32) -> &Nic {
        &self.nics[n as usize]
    }

    /// Node `n`'s GPU.
    pub fn gpu(&self, n: u32) -> &Gpu {
        &self.gpus[n as usize]
    }

    /// Node `n`'s CPU.
    pub fn cpu(&self, n: u32) -> &Cpu {
        &self.cpus[n as usize]
    }

    /// The activity log (empty unless `config.log_events`).
    pub fn log(&self) -> &[LogRecord] {
        &self.log
    }

    /// Node `n`'s failure-detector view of the cluster (meaningful only
    /// when `config.failure` is enabled).
    pub fn membership(&self, n: u32) -> &MembershipView {
        &self.views[n as usize]
    }

    /// The first death detection, if any: `(peer, detector)`.
    pub fn dead_detected(&self) -> Option<(u32, u32)> {
        self.dead_detected
    }

    /// The first suspicion, if any: `(peer, when)` — the first lease sweep
    /// that saw a peer leave `Alive`. Always at or before the death
    /// verdict; the gap between the two is the detector's confirmation
    /// time.
    pub fn first_suspect(&self) -> Option<(u32, SimTime)> {
        self.first_suspect
    }

    /// When the death verdict was reached, if any.
    pub fn dead_at(&self) -> Option<SimTime> {
        self.dead_at
    }

    /// Ground truth for a death verdict on `peer`: the injected crash the
    /// verdict traces back to. Prefers a spec that names the peer directly
    /// (its node, its NIC, a link or graph edge it terminates); falls back
    /// to the earliest edge crash — a severed interior wire can partition
    /// a peer no spec names. `None` when nothing was injected (a detector
    /// false positive, which the soundness tests assert never happens).
    pub fn resolve_culprit(&self, peer: u32) -> Option<CrashComponent> {
        let crashes = &self.config.fabric.faults.crashes;
        crashes
            .iter()
            .find(|c| match c.component {
                CrashComponent::Node(n) | CrashComponent::Nic(n) => n == peer,
                CrashComponent::Link { a, b } | CrashComponent::Edge { a, b } => {
                    a == peer || b == peer
                }
            })
            .or_else(|| {
                crashes
                    .iter()
                    .filter(|c| matches!(c.component, CrashComponent::Edge { .. }))
                    .min_by_key(|c| c.at_ns)
            })
            .map(|c| c.component)
    }

    /// Events dropped because their component had crashed by the time they
    /// fired (a crashed CPU does not step; a crashed NIC does not match).
    pub fn crash_suppressed(&self) -> u64 {
        self.crash_suppressed
    }

    /// The fabric's route-around log (empty unless `reroute_delay_ns` armed
    /// failover): one record per `(src, dst)` pair whose route changed when
    /// a failed edge was withdrawn.
    pub fn reroutes(&self) -> &[gtn_fabric::RerouteRecord] {
        self.fabric.reroutes()
    }

    /// Directed pairs left with no surviving path after withdrawals.
    pub fn partitioned_pairs(&self) -> u64 {
        self.fabric.partitioned_pairs()
    }

    /// Is node `n`'s compute (CPU + GPU) dead at `now`?
    fn compute_down(&self, n: u32, now: SimTime) -> bool {
        self.node_down[n as usize].is_some_and(|t| now >= t)
    }

    /// Is node `n`'s NIC dead at `now` (its own crash or its node's)?
    fn nic_is_down(&self, n: u32, now: SimTime) -> bool {
        self.nic_down[n as usize].is_some_and(|t| now >= t)
    }

    /// Snapshot every component's stats into a namespaced registry:
    /// `node{N}.cpu` / `node{N}.gpu` / `node{N}.nic` per node, `fabric`
    /// for the interconnect's fault counters, and `engine` for run
    /// counters (`events_processed`, `clamped_past_events`, pending).
    /// Deterministic: namespaces and their contents iterate in name order.
    pub fn collect_stats(&self) -> ClusterStats {
        let mut out = ClusterStats::new();
        for n in 0..self.config.n_nodes {
            let i = n as usize;
            out.insert(&format!("node{n}.cpu"), self.cpus[i].stats());
            out.insert(&format!("node{n}.gpu"), self.gpus[i].stats());
            out.insert(&format!("node{n}.nic"), self.nics[i].stats());
        }
        let mut fabric = StatSet::new();
        fabric.absorb(self.fabric.fault_stats());
        fabric.add("messages_sent", self.fabric.messages_sent());
        // Per-link utilization rollups over the topology graph: the
        // heaviest link is the congestion hot spot a scaling sweep reports.
        fabric.add("max_link_bytes", self.fabric.max_link_bytes());
        fabric.add("max_link_packets", self.fabric.max_link_packets());
        fabric.add("wire_bytes", self.fabric.total_wire_bytes());
        fabric.add("links", self.fabric.link_count() as u64);
        // Failover counters exist only when route-around is armed, so
        // baseline runs (and their goldens) never see the keys.
        if self.fabric.reroute_armed() {
            fabric.add("reroutes", self.fabric.reroutes().len() as u64);
            fabric.add("partitioned_pairs", self.fabric.partitioned_pairs());
        }
        out.insert("fabric", &fabric);
        let mut engine = StatSet::new();
        engine.add("events_processed", self.exec.events_processed());
        engine.add("clamped_past_events", self.exec.clamped_past_events());
        engine.add("events_pending", self.exec.pending() as u64);
        out.insert("engine", &engine);
        out
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.exec.now()
    }

    fn record(&mut self, at: SimTime, node: u32, kind: LogKind) {
        if self.config.log_events {
            self.log.push(LogRecord { at, node, kind });
        }
    }

    /// Run to completion (calendar drain). Returns per-node finish times
    /// and whether every host program completed.
    ///
    /// A stall watchdog supervises the loop: every dispatched event is
    /// classified as *progress* (a CPU pc moved, a GPU retired an op, any
    /// NIC activity) or an *idle poll retry*. Once
    /// `config.stall_timeout_ns` of simulated time passes without progress,
    /// the run is declared livelocked and aborted with a [`StallReport`]
    /// instead of spinning until the absolute event cap.
    pub fn run(&mut self) -> ClusterResult {
        // The engine and the component vectors are disjoint fields, but the
        // handler closure needs `&mut self`-ish access to all of them, so we
        // drive the loop manually via `step`.
        let horizon = SimDuration::from_ns(self.config.stall_timeout_ns);
        let mut last_progress = SimTime::ZERO;
        let mut abort: Option<StallReason> = None;
        loop {
            let Some((now, ev)) = self.exec.step() else {
                break; // calendar drained: completion or deadlock
            };
            if self.dispatch(now, ev) {
                last_progress = now;
            } else if now.since(last_progress) > horizon {
                abort = Some(StallReason::Livelock {
                    idle_ns: now.since(last_progress).as_ns_f64() as u64,
                });
                break;
            }
            if let Some((peer, detector)) = self.dead_detected {
                // A lease expired on an unfinished peer: terminate with a
                // structured verdict. Pending sends toward the corpse are
                // failed fast so the report names them as PeerDead, not as
                // mysterious in-flight retries.
                self.dead_at = Some(now);
                self.fail_dead_peer(now, peer);
                abort = Some(StallReason::PeerDead {
                    peer,
                    detector,
                    culprit: self.resolve_culprit(peer),
                });
                break;
            }
            if self.exec.events_processed() >= 400_000_000 {
                abort = Some(StallReason::EventCap); // absolute backstop
                break;
            }
        }
        let completed = self.finish_times.iter().all(Option::is_some);
        let makespan = self
            .finish_times
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO);
        let stall = if completed {
            None
        } else {
            let reason = abort.unwrap_or_else(|| {
                // A drained calendar with commits parked on exhausted NIC
                // resources is starvation, not a protocol deadlock: the
                // work exists, the resources to finish it don't.
                let starved = (0..self.config.n_nodes).any(|n| {
                    let nic = &self.nics[n as usize];
                    nic.cq_parked() > 0 || nic.flow_queued() > 0
                });
                if starved {
                    StallReason::ResourceStarvation
                } else {
                    StallReason::Deadlock
                }
            });
            Some(self.stall_report(reason))
        };
        ClusterResult {
            finish_times: self.finish_times.clone(),
            makespan,
            completed,
            events: self.exec.events_processed(),
            stall,
        }
    }

    /// Diagnose every unfinished node (see [`StallReport`]).
    fn stall_report(&self, reason: StallReason) -> StallReport {
        let nodes = (0..self.config.n_nodes)
            .filter(|&n| self.finish_times[n as usize].is_none())
            .map(|n| {
                let cpu = &self.cpus[n as usize];
                let blocked_on = if let Some(label) = cpu.waiting_on() {
                    BlockedOn::Kernel {
                        label: label.to_owned(),
                    }
                } else {
                    match cpu.current_op() {
                        Some(HostOp::Poll { addr, at_least }) => BlockedOn::Poll {
                            addr: *addr,
                            at_least: *at_least,
                            current: self.mem.read_u64(*addr),
                        },
                        Some(op) => BlockedOn::Op {
                            desc: format!("{op:?}"),
                        },
                        None => BlockedOn::Op {
                            desc: "<program end>".into(),
                        },
                    }
                };
                let nic = &self.nics[n as usize];
                NodeStall {
                    node: n,
                    blocked_on,
                    pc: cpu.pc(),
                    program_len: cpu.program_len(),
                    kernels_in_flight: self.gpus[n as usize].kernels_in_flight(),
                    pending_triggers: nic.triggers().pending_entries(),
                    in_flight_retries: nic.pending_retries(),
                    delivery_failures: nic.delivery_failures().to_vec(),
                    trigger_overflow: nic.triggers().overflow_len(),
                    cq_parked: nic.cq_parked(),
                    flow_queued: nic.flow_queued(),
                    admission_shed: nic.triggers().admission_shed(),
                }
            })
            .collect();
        let tail = self.log.len().saturating_sub(16);
        StallReport {
            at: self.exec.now(),
            reason,
            nodes,
            clamped_past_events: self.exec.clamped_past_events(),
            recent: self.log[tail..].to_vec(),
        }
    }

    /// Dispatch one event; returns true if it made progress (anything
    /// beyond re-checking a still-unsatisfied poll).
    fn dispatch(&mut self, now: SimTime, ev: Event) -> bool {
        // Crash-stop suppression: a dead component's pending events fire
        // into the void. The fabric already black-holes its traffic; this
        // is the compute side of the same silence.
        let crashed = match &ev {
            Event::Cpu(n, _) | Event::Gpu(n, _) => self.compute_down(*n, now),
            Event::Nic(n, _) => self.nic_is_down(*n, now),
            Event::HbTick(_) | Event::HbArrive { .. } => false, // handled below
        };
        if crashed {
            self.crash_suppressed += 1;
            return false;
        }
        match ev {
            Event::Cpu(n, ev) => {
                let i = n as usize;
                let before = (self.cpus[i].pc(), self.cpus[i].is_finished());
                let outs = self.cpus[i].handle(now, ev, &mut self.mem);
                let progress = (self.cpus[i].pc(), self.cpus[i].is_finished()) != before;
                for out in outs {
                    self.route_cpu(n, out);
                }
                progress
            }
            Event::Gpu(n, ev) => {
                // Log the protocol-relevant internal transitions.
                if let GpuEvent::Dispatch(kid) = &ev {
                    self.record(now, n, LogKind::KernelDispatched(kid.0));
                }
                let i = n as usize;
                let idle_before = self.gpus[i].idle_polls();
                let outs = self.gpus[i].handle(now, ev, &mut self.mem);
                let progress = self.gpus[i].idle_polls() == idle_before;
                for out in outs {
                    self.route_gpu(n, out);
                }
                progress
            }
            Event::Nic(n, ev) => {
                match &ev {
                    NicEvent::DmaReadDone(_) => self.record(now, n, LogKind::PutDmaDone),
                    NicEvent::RxArrive(_) => self.record(now, n, LogKind::MessageArrived),
                    NicEvent::RxDone(_) => self.record(now, n, LogKind::MessageCommitted),
                    _ => {}
                }
                let outs = self.nics[n as usize].handle(now, ev, &mut self.mem, &mut self.fabric);
                for out in outs {
                    self.route_nic(n, out);
                }
                self.drain_nic_notes(n);
                // NIC activity is always progress: it is bounded (retry
                // budgets exhaust; nothing in the NIC self-perpetuates
                // indefinitely) and usually exactly what pollers wait on.
                true
            }
            // Heartbeats are deliberately NOT progress: a wedged cluster
            // that still exchanges probes is exactly as wedged, and the
            // livelock watchdog must still be able to fire.
            Event::HbTick(s) => {
                self.heartbeat_tick(now, s);
                false
            }
            Event::HbArrive { to, from } => {
                if !self.compute_down(to, now) {
                    self.views[to as usize].record_alive(from, now);
                }
                false
            }
        }
    }

    /// One node's probe broadcast + lease sweep + re-arm. Probes travel on
    /// the control lane: straight from host agent to fabric, charged real
    /// latency and judged by the fault plan (loss, outages, crashes), but
    /// bypassing the NIC's CQ/CAM/flow-control — resource pressure can
    /// never starve detection, which is what keeps the detector sound
    /// under pure loss/pressure.
    fn heartbeat_tick(&mut self, now: SimTime, s: u32) {
        // Stop the daemon once the run is decided: all programs finished
        // (let the calendar drain), a death verdict was already reached
        // (the run loop is about to terminate — not re-arming lets the
        // calendar drain cleanly instead of ticking against the event
        // budget), or the probing node itself is dead.
        if self.finish_times.iter().all(Option::is_some)
            || self.dead_detected.is_some()
            || self.compute_down(s, now)
        {
            return;
        }
        // A retired (finished) node stops *probing*: no lease sweep ever
        // targets a finished peer, so its probes confirm nothing and only
        // burn event budget. It keeps sweeping below — it may be the only
        // survivor left to notice a dead peer. Probes toward finished
        // nodes continue for the same reason: their sweeps are still live,
        // and going silent toward them would read as a false death.
        if self.finish_times[s as usize].is_none() {
            for d in 0..self.config.n_nodes {
                if d == s {
                    continue;
                }
                let (timing, delivery) =
                    self.fabric
                        .send_message_faulty(now, NodeId(s), NodeId(d), HEARTBEAT_BYTES);
                if matches!(delivery, Delivery::Delivered) {
                    self.exec
                        .schedule_at(timing.last_arrival, Event::HbArrive { to: d, from: s });
                }
            }
        }
        // Lease sweep over this observer's own view. A peer whose program
        // already finished is left alone: its silence is retirement, not
        // death, and the run can still complete without it.
        if self.dead_detected.is_none() {
            for p in 0..self.config.n_nodes {
                if self.finish_times[p as usize].is_some() {
                    continue;
                }
                match self.views[s as usize].liveness(p, now, &self.config.failure) {
                    Liveness::Dead => {
                        if self.first_suspect.is_none() {
                            self.first_suspect = Some((p, now));
                        }
                        self.dead_detected = Some((p, s));
                        break;
                    }
                    Liveness::Suspect => {
                        if self.first_suspect.is_none() {
                            self.first_suspect = Some((p, now));
                        }
                    }
                    Liveness::Alive => {}
                }
            }
        }
        let period = SimDuration::from_ns(self.config.failure.heartbeat_period_ns);
        self.exec.schedule_at(now + period, Event::HbTick(s));
    }

    /// Fail every surviving NIC's pending sends toward a declared-dead peer
    /// (CQ error entries with cause `PeerDead`). Runs at termination, so
    /// follow-up events the NICs would emit are irrelevant and dropped.
    fn fail_dead_peer(&mut self, now: SimTime, peer: u32) {
        let culprit = self.resolve_culprit(peer);
        for n in 0..self.config.n_nodes {
            if n == peer || self.nic_is_down(n, now) {
                continue;
            }
            let _ = self.nics[n as usize].mark_peer_dead(now, NodeId(peer), culprit, &mut self.mem);
            self.drain_nic_notes(n);
        }
    }

    /// Fold the NIC's fault/reliability journal into the activity log.
    /// Drained unconditionally so the journal never grows unbounded.
    fn drain_nic_notes(&mut self, n: u32) {
        let notes = self.nics[n as usize].take_notes();
        if !self.config.log_events {
            return;
        }
        for (at, note) in notes {
            let kind = match note {
                NicNote::MessageDropped { seq, .. } => LogKind::MessageDropped { seq },
                NicNote::MessageCorrupted { seq, .. } => LogKind::MessageCorrupted { seq },
                NicNote::Retransmitted { seq, attempt, .. } => {
                    LogKind::Retransmitted { seq, attempt }
                }
                NicNote::DeliveryFailed {
                    seq,
                    attempts,
                    cause,
                    ..
                } => LogKind::DeliveryFailed {
                    seq,
                    attempts,
                    cause,
                },
                NicNote::TriggerRejected(e) => LogKind::TriggerRejected(e.to_string()),
                NicNote::CqStalled { waited } => LogKind::CqStalled {
                    waited_ps: waited.as_ps(),
                },
            };
            self.log.push(LogRecord { at, node: n, kind });
        }
    }

    fn route_cpu(&mut self, n: u32, out: CpuOutput) {
        match out {
            CpuOutput::Local { at, ev } => self.exec.schedule_at(at, Event::Cpu(n, ev)),
            CpuOutput::EnqueueKernel { at, launch } => {
                self.record(at, n, LogKind::KernelEnqueued);
                self.exec
                    .schedule_at(at, Event::Gpu(n, GpuEvent::Enqueue(launch)));
            }
            CpuOutput::Doorbell { at, cmd } => {
                self.record(at, n, LogKind::DoorbellRung);
                let delay = self.nics[n as usize].doorbell_delay();
                self.exec
                    .schedule_at(at + delay, Event::Nic(n, NicEvent::Doorbell(cmd)));
            }
            CpuOutput::TriggerWrite { at, tag } => {
                self.record(at, n, LogKind::TriggerWrite(tag.0));
                let delay = self.nics[n as usize].trigger_route_delay();
                self.exec
                    .schedule_at(at + delay, Event::Nic(n, NicEvent::TriggerWrite(tag)));
            }
            CpuOutput::Finished { at } => {
                self.record(at, n, LogKind::CpuFinished);
                self.finish_times[n as usize] = Some(at);
            }
        }
    }

    fn route_gpu(&mut self, n: u32, out: GpuOutput) {
        match out {
            GpuOutput::Local { at, ev } => self.exec.schedule_at(at, Event::Gpu(n, ev)),
            GpuOutput::TriggerWrite { at, tag } => {
                self.record(at, n, LogKind::TriggerWrite(tag.0));
                let delay = self.nics[n as usize].trigger_route_delay();
                self.exec
                    .schedule_at(at + delay, Event::Nic(n, NicEvent::TriggerWrite(tag)));
            }
            GpuOutput::TriggerWriteDyn { at, tag, fields } => {
                self.record(at, n, LogKind::TriggerWrite(tag.0));
                let delay = self.nics[n as usize].trigger_route_delay();
                self.exec.schedule_at(
                    at + delay,
                    Event::Nic(n, NicEvent::TriggerWriteDyn(tag, fields)),
                );
            }
            GpuOutput::KernelDone { kid, at, label } => {
                self.record(
                    at,
                    n,
                    LogKind::KernelDone {
                        kid: kid.0,
                        label: label.clone(),
                    },
                );
                // GDS hook: front-end rings the NIC at the kernel boundary.
                if let Some(tags) = self.gds_hooks.get(&(n, label.clone())) {
                    let ring = at + SimDuration::from_ns(GDS_DOORBELL_NS);
                    let delay = self.nics[n as usize].trigger_route_delay();
                    for &tag in tags.clone().iter() {
                        self.record(ring, n, LogKind::TriggerWrite(tag.0));
                        self.exec
                            .schedule_at(ring + delay, Event::Nic(n, NicEvent::TriggerWrite(tag)));
                    }
                }
                // Host runtime observes completion.
                self.exec
                    .schedule_at(at, Event::Cpu(n, CpuEvent::KernelDone(label)));
            }
        }
    }

    fn route_nic(&mut self, n: u32, out: NicOutput) {
        match out {
            NicOutput::Local { at, ev } => self.exec.schedule_at(at, Event::Nic(n, ev)),
            NicOutput::Remote { node, at, ev } => {
                self.exec.schedule_at(at, Event::Nic(node.0, ev));
            }
        }
    }

    /// Convenience: run and assert completion, returning the makespan.
    pub fn run_to_completion(&mut self) -> SimTime {
        let r = self.run();
        r.expect_completed()
    }

    /// Engine drain state (for tests poking at partial runs).
    pub fn pending_events(&self) -> usize {
        self.exec.pending()
    }

    /// Run outcome sanity helper used by tests: did the engine drain?
    pub fn drained(&self) -> bool {
        self.exec.pending() == 0
    }

    /// The calendar shard count this cluster actually runs with (1 = the
    /// flat sequential calendar).
    pub fn sim_shards(&self) -> u32 {
        match &self.exec {
            Exec::Single(_) => 1,
            Exec::Sharded { shards, .. } => *shards,
        }
    }

    /// Events scheduled across a shard boundary (always 0 on the flat
    /// path). Diagnostic only — never part of golden stats output, so the
    /// shard count cannot leak into results.
    pub fn cross_shard_messages(&self) -> u64 {
        match &self.exec {
            Exec::Single(_) => 0,
            Exec::Sharded { queue, .. } => queue.cross_shard_messages(),
        }
    }

    /// Cross-shard events scheduled closer than the fabric's minimum
    /// cross-node latency — violations of the conservative-lookahead
    /// premise. The merged dispatch stays exact regardless; tests assert
    /// this is 0 so the premise is *verified*, not assumed.
    pub fn lookahead_violations(&self) -> u64 {
        match &self.exec {
            Exec::Single(_) => 0,
            Exec::Sharded { queue, .. } => queue.lookahead_violations(),
        }
    }

    /// Per-shard clocks (timestamp of each shard's last dispatched event):
    /// the stall watchdog's cross-shard view. On the flat path this is the
    /// single merged clock.
    pub fn shard_clocks(&self) -> Vec<SimTime> {
        match &self.exec {
            Exec::Single(engine) => vec![engine.now()],
            Exec::Sharded { queue, .. } => (0..queue.n_shards())
                .map(|s| queue.shard_clock(s))
                .collect(),
        }
    }
}

// RunOutcome re-export kept for API completeness of run_until-style uses.
#[allow(unused_imports)]
use RunOutcome as _;

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_gpu::kernel::ProgramBuilder;
    use gtn_gpu::KernelLaunch;
    use gtn_mem::scope::{MemOrdering, MemScope};
    use gtn_mem::Addr;
    use gtn_nic::nic::NicCommand;
    use gtn_nic::op::{NetOp, Notify};

    /// End-to-end GPU-TN ping: node 0's CPU registers a triggered put and
    /// launches a kernel that fills the buffer and triggers mid-kernel;
    /// node 1's CPU polls for the payload.
    fn gputn_ping() -> (Cluster, Addr, Addr) {
        gputn_ping_sharded(0)
    }

    /// [`gputn_ping`] with the calendar pinned to `sim_shards` shards
    /// (0 = the default sequential path).
    fn gputn_ping_sharded(sim_shards: u32) -> (Cluster, Addr, Addr) {
        let mut config = ClusterConfig::table2(2);
        config.sim_shards = sim_shards;
        let mut mem = MemPool::new(2);
        let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 64, "src"));
        let dst = Addr::base(NodeId(1), mem.alloc(NodeId(1), 64, "dst"));
        let flag = Addr::base(NodeId(1), mem.alloc(NodeId(1), 8, "flag"));
        let comp = Addr::base(NodeId(0), mem.alloc(NodeId(0), 8, "comp"));

        let kernel = ProgramBuilder::new()
            .compute(gtn_sim::time::SimDuration::from_ns(430))
            .func(move |mem, _| mem.write(src, &[0x42; 64]))
            .fence(MemScope::System, MemOrdering::Release)
            .trigger_store(|_| Tag(1))
            .build()
            .expect("valid kernel");

        let mut p0 = HostProgram::new();
        p0.nic_post(NicCommand::TriggeredPut {
            tag: Tag(1),
            threshold: 1,
            op: NetOp::Put {
                src,
                len: 64,
                target: NodeId(1),
                dst,
                notify: Some(Notify {
                    flag,
                    add: 1,
                    chain: None,
                }),
                completion: Some(comp),
            },
        })
        .launch(KernelLaunch::new(kernel, 1, 64, "ping"))
        .wait_kernel("ping");

        let mut p1 = HostProgram::new();
        p1.poll(flag, 1);

        (Cluster::new(config, mem, vec![p0, p1]), dst, flag)
    }

    #[test]
    fn gputn_ping_delivers_payload() {
        let (mut cluster, dst, flag) = gputn_ping();
        let result = cluster.run();
        assert!(result.completed, "{result:?}");
        assert_eq!(cluster.mem().read(dst, 64), &[0x42; 64]);
        assert_eq!(cluster.mem().read_u64(flag), 1);
        assert!(
            result.makespan < SimTime::from_us(10),
            "{}",
            result.makespan
        );
        assert_eq!(cluster.nic(0).stats().counter("fired_at_trigger"), 1);
    }

    #[test]
    fn gputn_target_completes_before_initiator_kernel_ends() {
        // The Fig. 8 phenomenon: "the target node receives the network data
        // before the kernel on the initiator completes."
        let (mut cluster, _, _) = gputn_ping();
        cluster.run();
        let commit = cluster
            .log()
            .iter()
            .find(|r| r.node == 1 && r.kind == LogKind::MessageCommitted)
            .expect("message committed")
            .at;
        let kernel_done = cluster
            .log()
            .iter()
            .find_map(|r| match &r.kind {
                LogKind::KernelDone { label, .. } if r.node == 0 && label == "ping" => Some(r.at),
                _ => None,
            })
            .expect("kernel done");
        assert!(
            commit < kernel_done,
            "GPU-TN should deliver intra-kernel: commit {commit} vs done {kernel_done}"
        );
    }

    #[test]
    fn sharded_ping_is_bit_identical_and_respects_lookahead() {
        // One shard per node: the ping crosses shards on every network
        // hop, yet the sharded calendar must dispatch the identical event
        // sequence — same makespan, same activity log, same engine stats —
        // with zero sub-lookahead cross-shard messages.
        let (mut seq, dst, flag) = gputn_ping_sharded(0);
        let seq_result = seq.run();
        let (mut par, pdst, pflag) = gputn_ping_sharded(2);
        assert_eq!(par.sim_shards(), 2);
        let par_result = par.run();
        assert!(par_result.completed, "{par_result:?}");
        assert_eq!(par.mem().read(pdst, 64), seq.mem().read(dst, 64));
        assert_eq!(par.mem().read_u64(pflag), seq.mem().read_u64(flag));
        assert_eq!(par_result.makespan, seq_result.makespan);
        assert_eq!(par_result.events, seq_result.events);
        assert_eq!(
            format!("{:?}", par.log()),
            format!("{:?}", seq.log()),
            "sharding reordered the activity log"
        );
        assert!(
            par.cross_shard_messages() > 0,
            "a 2-node ping on 2 shards must cross shards"
        );
        assert_eq!(par.lookahead_violations(), 0);
        // The sequential path reports a single merged clock; the sharded
        // path one clock per shard, none ahead of the merged now.
        assert_eq!(seq.shard_clocks().len(), 1);
        assert_eq!(par.shard_clocks().len(), 2);
    }

    #[test]
    fn gds_hook_rings_doorbell_at_kernel_boundary() {
        let config = ClusterConfig::table2(2);
        let mut mem = MemPool::new(2);
        let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 64, "src"));
        let dst = Addr::base(NodeId(1), mem.alloc(NodeId(1), 64, "dst"));
        let flag = Addr::base(NodeId(1), mem.alloc(NodeId(1), 8, "flag"));
        mem.write(src, &[7; 64]);

        let kernel = ProgramBuilder::new()
            .compute(gtn_sim::time::SimDuration::from_ns(430))
            .build()
            .unwrap();

        let mut p0 = HostProgram::new();
        p0.nic_post(NicCommand::TriggeredPut {
            tag: Tag(9),
            threshold: 1,
            op: NetOp::Put {
                src,
                len: 64,
                target: NodeId(1),
                dst,
                notify: Some(Notify {
                    flag,
                    add: 1,
                    chain: None,
                }),
                completion: None,
            },
        })
        .launch(KernelLaunch::new(kernel, 1, 64, "gdsk"))
        .wait_kernel("gdsk");
        let mut p1 = HostProgram::new();
        p1.poll(flag, 1);

        let mut cluster = Cluster::new(config, mem, vec![p0, p1]);
        cluster.gds_doorbell_on_done(0, "gdsk", Tag(9));
        let result = cluster.run();
        assert!(result.completed);
        assert_eq!(cluster.mem().read(dst, 64), &[7; 64]);

        // GDS delivers only after the kernel boundary.
        let commit = cluster
            .log()
            .iter()
            .find(|r| r.node == 1 && r.kind == LogKind::MessageCommitted)
            .unwrap()
            .at;
        let kernel_done = cluster
            .log()
            .iter()
            .find_map(|r| match &r.kind {
                LogKind::KernelDone { .. } if r.node == 0 => Some(r.at),
                _ => None,
            })
            .unwrap();
        assert!(commit > kernel_done, "GDS is kernel-boundary");
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let config = ClusterConfig::table2(1);
        let mut mem = MemPool::new(1);
        let flag = Addr::base(NodeId(0), mem.alloc(NodeId(0), 8, "never"));
        let mut p0 = HostProgram::new();
        // Wait for a kernel nobody launches: CPU blocks, engine drains.
        p0.wait_kernel("ghost");
        let mut cluster = Cluster::new(config, mem, vec![p0]);
        let result = cluster.run();
        assert!(!result.completed);
        assert_eq!(result.finish_times, vec![None]);
        let report = result.stall.as_ref().expect("stall report for deadlock");
        assert_eq!(report.reason, crate::stall::StallReason::Deadlock);
        assert_eq!(report.nodes.len(), 1);
        assert_eq!(
            report.nodes[0].blocked_on,
            crate::stall::BlockedOn::Kernel {
                label: "ghost".into()
            }
        );
        let _ = flag;
    }

    #[test]
    fn livelock_polling_is_caught_by_watchdog() {
        let mut config = ClusterConfig::table2(1);
        config.stall_timeout_ns = 100_000; // fast test: 100 us of spinning
        let mut mem = MemPool::new(1);
        let flag = Addr::base(NodeId(0), mem.alloc(NodeId(0), 8, "never"));
        let mut p0 = HostProgram::new();
        // Poll a flag nobody ever sets: the CPU reschedules itself forever,
        // so the calendar never drains — only the watchdog can end this.
        p0.poll(flag, 1);
        let mut cluster = Cluster::new(config, mem, vec![p0]);
        let result = cluster.run();
        assert!(!result.completed);
        let report = result.stall.as_ref().expect("stall report for livelock");
        assert!(
            matches!(report.reason, crate::stall::StallReason::Livelock { .. }),
            "{:?}",
            report.reason
        );
        assert_eq!(report.nodes.len(), 1);
        match report.nodes[0].blocked_on {
            crate::stall::BlockedOn::Poll {
                at_least, current, ..
            } => {
                assert_eq!(at_least, 1);
                assert_eq!(current, 0);
            }
            ref other => panic!("expected Poll, got {other:?}"),
        }
        // Orders of magnitude below the 400M-event backstop.
        assert!(result.events < 100_000, "{}", result.events);
        // And the rendering names the essentials.
        let text = report.to_string();
        assert!(text.contains("livelock"), "{text}");
        assert!(text.contains("node 0"), "{text}");
    }

    #[test]
    #[should_panic(expected = "cluster did not complete")]
    fn expect_completed_panics_with_report() {
        let mut config = ClusterConfig::table2(1);
        config.stall_timeout_ns = 100_000;
        let mut mem = MemPool::new(1);
        let flag = Addr::base(NodeId(0), mem.alloc(NodeId(0), 8, "never"));
        let mut p0 = HostProgram::new();
        p0.poll(flag, 1);
        let mut cluster = Cluster::new(config, mem, vec![p0]);
        cluster.run().expect_completed();
    }

    #[test]
    fn collect_stats_namespaces_every_component() {
        let (mut cluster, _, _) = gputn_ping();
        cluster.run();
        let stats = cluster.collect_stats();
        let names: Vec<&str> = stats.namespaces().collect();
        assert_eq!(
            names,
            vec![
                "engine",
                "fabric",
                "node0.cpu",
                "node0.gpu",
                "node0.nic",
                "node1.cpu",
                "node1.gpu",
                "node1.nic",
            ]
        );
        assert_eq!(stats.counter("node0.nic", "fired_at_trigger"), 1);
        assert_eq!(stats.counter("engine", "clamped_past_events"), 0);
        assert!(stats.counter("engine", "events_processed") > 0);
        // Stage histograms flow through: initiator injected, target committed.
        assert!(stats
            .get("node0.nic")
            .unwrap()
            .histogram("stage_injection")
            .is_some());
        assert!(stats
            .get("node1.nic")
            .unwrap()
            .histogram("stage_commit")
            .is_some());
        // Cross-node merge sees both sides' wire stage.
        let nic = stats.merged("nic");
        assert_eq!(nic.histogram("stage_wire").unwrap().count(), 1);
        // Target CPU's poll wait (the CQ-poll stage).
        assert_eq!(
            stats
                .get("node1.cpu")
                .unwrap()
                .histogram("poll_wait")
                .unwrap()
                .count(),
            1
        );
    }

    #[test]
    fn log_records_protocol_moments_in_order() {
        let (mut cluster, _, _) = gputn_ping();
        cluster.run();
        let kinds: Vec<&LogKind> = cluster.log().iter().map(|r| &r.kind).collect();
        // Doorbell (post) precedes trigger write precedes commit.
        let pos = |pred: &dyn Fn(&LogKind) -> bool| kinds.iter().position(|k| pred(k)).unwrap();
        let doorbell = pos(&|k| matches!(k, LogKind::DoorbellRung));
        let trig = pos(&|k| matches!(k, LogKind::TriggerWrite(1)));
        let commit = pos(&|k| matches!(k, LogKind::MessageCommitted));
        assert!(doorbell < trig && trig < commit, "{kinds:?}");
    }

    #[test]
    fn node_crash_is_detected_and_aborts_with_peer_dead() {
        use crate::membership::FailureConfig;
        use gtn_fabric::FaultConfig;
        let mut config = ClusterConfig::table2(2);
        config.failure = FailureConfig::detection();
        config.fabric.faults = FaultConfig::crash(1, 1_000_000); // dies at 1 ms
        let mut mem = MemPool::new(2);
        let flag = Addr::base(NodeId(0), mem.alloc(NodeId(0), 8, "flag"));
        let mut p0 = HostProgram::new();
        p0.poll(flag, 1); // waits on node 1, who dies before delivering
        let mut p1 = HostProgram::new();
        p1.compute(gtn_sim::time::SimDuration::from_us(10_000));

        let mut cluster = Cluster::new(config, mem, vec![p0, p1]);
        let result = cluster.run();
        assert!(!result.completed);
        let report = result.stall.as_ref().expect("stall report");
        assert_eq!(
            report.reason,
            crate::stall::StallReason::PeerDead {
                peer: 1,
                detector: 0,
                culprit: Some(gtn_fabric::CrashComponent::Node(1)),
            }
        );
        // Last probe from node 1 lands just after 0.9 ms; the 2 ms lease
        // expires by node 0's 3.0 ms sweep. Detection is prompt: well
        // before the 50 ms stall watchdog, in a bounded event count.
        assert_eq!(report.at, SimTime::from_us(3_000), "{}", report.at);
        assert!(result.events < 100_000, "{}", result.events);
        assert_eq!(cluster.dead_detected(), Some((1, 0)));
        // The suspicion → death timeline is recorded: suspect strictly
        // after the injection, death strictly after (or at) suspicion.
        let (sus_peer, sus_at) = cluster.first_suspect().expect("suspected");
        assert_eq!(sus_peer, 1);
        assert!(sus_at > SimTime::from_us(1_000), "{sus_at}");
        assert_eq!(cluster.dead_at(), Some(report.at));
        assert!(sus_at <= report.at, "{sus_at} vs {}", report.at);
        let text = report.to_string();
        assert!(text.contains("node 1 declared dead by node 0"), "{text}");
        assert!(text.contains("culprit node 1"), "{text}");
    }

    #[test]
    fn detection_on_healthy_run_completes_with_fresh_leases() {
        use crate::membership::{FailureConfig, Liveness};
        let mut config = ClusterConfig::table2(2);
        config.failure = FailureConfig::detection();
        let mem = MemPool::new(2);
        let mut p0 = HostProgram::new();
        p0.compute(gtn_sim::time::SimDuration::from_us(500));
        let mut p1 = HostProgram::new();
        p1.compute(gtn_sim::time::SimDuration::from_us(500));
        let mut cluster = Cluster::new(config, mem, vec![p0, p1]);
        let result = cluster.run();
        assert!(result.completed, "{result:?}");
        assert_eq!(cluster.dead_detected(), None);
        // Both observers heard from each other and hold fresh leases.
        let now = cluster.now();
        let failure = cluster.config().failure;
        for (me, peer) in [(0u32, 1u32), (1, 0)] {
            assert!(cluster.membership(me).last_heard(peer) > SimTime::ZERO);
            assert_eq!(
                cluster.membership(me).liveness(peer, now, &failure),
                Liveness::Alive
            );
        }
    }

    #[test]
    fn crash_after_finish_is_retirement_not_death() {
        use crate::membership::FailureConfig;
        use gtn_fabric::FaultConfig;
        let mut config = ClusterConfig::table2(2);
        config.failure = FailureConfig::detection();
        config.fabric.faults = FaultConfig::crash(1, 1_000_000);
        let mem = MemPool::new(2);
        let mut p0 = HostProgram::new();
        // Node 0 outlives node 1's crash by far: leases on node 1 expire
        // while node 0 still runs, but node 1's program already finished.
        p0.compute(gtn_sim::time::SimDuration::from_us(5_000));
        let p1 = HostProgram::new(); // empty: finishes at t = 0, then dies
        let mut cluster = Cluster::new(config, mem, vec![p0, p1]);
        let result = cluster.run();
        assert!(result.completed, "{result:?}");
        assert_eq!(cluster.dead_detected(), None);
    }

    #[test]
    fn crashed_node_stops_spinning_and_drains() {
        use gtn_fabric::FaultConfig;
        let mut config = ClusterConfig::table2(1);
        config.fabric.faults = FaultConfig::crash(0, 500_000);
        let mut mem = MemPool::new(1);
        let flag = Addr::base(NodeId(0), mem.alloc(NodeId(0), 8, "never"));
        let mut p0 = HostProgram::new();
        p0.poll(flag, 1); // would spin forever — but the node dies
        let mut cluster = Cluster::new(config, mem, vec![p0]);
        let result = cluster.run();
        assert!(!result.completed);
        // The corpse's poll retry is suppressed, so the calendar drains
        // quickly instead of spinning to the livelock watchdog.
        assert!(cluster.crash_suppressed() >= 1);
        assert!(result.events < 100_000, "{}", result.events);
        let report = result.stall.as_ref().unwrap();
        assert_eq!(report.reason, crate::stall::StallReason::Deadlock);
    }

    #[test]
    fn relaxed_sync_overlap_post_after_trigger_still_delivers() {
        // §3.2/§4.1: launch the kernel FIRST, post the triggered op LATER.
        let config = ClusterConfig::table2(2);
        let mut mem = MemPool::new(2);
        let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 64, "src"));
        let dst = Addr::base(NodeId(1), mem.alloc(NodeId(1), 64, "dst"));
        let flag = Addr::base(NodeId(1), mem.alloc(NodeId(1), 8, "flag"));

        let kernel = ProgramBuilder::new()
            .func(move |mem, _| mem.write(src, &[0x99; 64]))
            .fence(MemScope::System, MemOrdering::Release)
            .trigger_store(|_| Tag(5))
            .build()
            .unwrap();

        let mut p0 = HostProgram::new();
        p0.launch(KernelLaunch::new(kernel, 1, 64, "k"))
            // Give the kernel a head start so its trigger lands first.
            .compute(gtn_sim::time::SimDuration::from_us(10))
            .nic_post(NicCommand::TriggeredPut {
                tag: Tag(5),
                threshold: 1,
                op: NetOp::Put {
                    src,
                    len: 64,
                    target: NodeId(1),
                    dst,
                    notify: Some(Notify {
                        flag,
                        add: 1,
                        chain: None,
                    }),
                    completion: None,
                },
            })
            .wait_kernel("k");
        let mut p1 = HostProgram::new();
        p1.poll(flag, 1);

        let mut cluster = Cluster::new(config, mem, vec![p0, p1]);
        let result = cluster.run();
        assert!(result.completed);
        assert_eq!(cluster.mem().read(dst, 64), &[0x99; 64]);
        assert_eq!(cluster.nic(0).triggers().early_allocations(), 1);
        assert_eq!(cluster.nic(0).stats().counter("fired_at_post"), 1);
    }
}
