//! The assembled cluster: one deterministic event loop over every node's
//! CPU, GPU, and NIC, a shared memory pool, and the star fabric.
//!
//! `Cluster` is the only place components meet. It routes each component's
//! sans-IO outputs to their destinations with the configured interconnect
//! delays (host doorbell → NIC, GPU MMIO trigger store → NIC trigger FIFO,
//! NIC → remote NIC via the fabric, GPU kernel completion → host runtime),
//! and — when enabled — records an **activity log** of the protocol-level
//! moments the evaluation decomposes (kernel enqueue/dispatch/done, doorbell
//! rings, trigger writes, DMA completion, message arrival/commit). The
//! Fig. 8 latency decomposition and several integration tests read that log.

use crate::config::ClusterConfig;
use gtn_fabric::Fabric;
use gtn_gpu::{Gpu, GpuEvent, GpuOutput};
use gtn_host::{Cpu, CpuEvent, CpuOutput, HostProgram};
use gtn_mem::{MemPool, NodeId};
use gtn_nic::nic::{Nic, NicEvent, NicOutput};
use gtn_nic::Tag;
use gtn_sim::engine::RunOutcome;
use gtn_sim::time::{SimDuration, SimTime};
use gtn_sim::Engine;
use std::collections::HashMap;

/// Cost of the GPU front-end ringing the NIC doorbell at a kernel boundary
/// (the GDS mechanism): a single posted write from the scheduler, no CPU.
const GDS_DOORBELL_NS: u64 = 20;

/// One logged protocol moment.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// When.
    pub at: SimTime,
    /// Which node.
    pub node: u32,
    /// What.
    pub kind: LogKind,
}

/// The protocol moments the evaluation cares about.
#[derive(Debug, Clone, PartialEq)]
pub enum LogKind {
    /// Host runtime finished the launch call; front-end launch begins.
    KernelEnqueued,
    /// Front-end finished launching kernel `kid`; work-groups start.
    KernelDispatched(u64),
    /// Kernel fully complete (teardown included).
    KernelDone {
        /// GPU-assigned kernel id.
        kid: u64,
        /// Launch label.
        label: String,
    },
    /// Host rang the NIC doorbell.
    DoorbellRung,
    /// A trigger-address write was issued (by GPU, CPU, or the GDS
    /// front-end hook) carrying this tag.
    TriggerWrite(u64),
    /// Initiator NIC finished DMA-reading a put's payload (injection
    /// begins; send buffer reusable).
    PutDmaDone,
    /// A message's last packet arrived at this node's NIC.
    MessageArrived,
    /// Payload committed to this node's memory (flags visible).
    MessageCommitted,
    /// This node's host program ran to completion.
    CpuFinished,
}

/// Outcome of a cluster run.
#[derive(Debug)]
pub struct ClusterResult {
    /// Per-node host-program completion times.
    pub finish_times: Vec<Option<SimTime>>,
    /// Latest completion across nodes (the experiment's measured time).
    pub makespan: SimTime,
    /// True if every node's host program completed. False means deadlock —
    /// a poll that never satisfied, a wait on a kernel that never ran.
    pub completed: bool,
    /// Total events processed.
    pub events: u64,
}

impl ClusterResult {
    /// Makespan, asserting completion (panics with diagnostics otherwise).
    pub fn expect_completed(&self) -> SimTime {
        assert!(
            self.completed,
            "cluster deadlocked: finish_times = {:?}",
            self.finish_times
        );
        self.makespan
    }
}

#[derive(Debug)]
enum Event {
    Cpu(u32, CpuEvent),
    Gpu(u32, GpuEvent),
    Nic(u32, NicEvent),
}

/// A simulated cluster mid-experiment.
pub struct Cluster {
    config: ClusterConfig,
    mem: MemPool,
    fabric: Fabric,
    cpus: Vec<Cpu>,
    gpus: Vec<Gpu>,
    nics: Vec<Nic>,
    engine: Engine<Event>,
    log: Vec<LogRecord>,
    finish_times: Vec<Option<SimTime>>,
    /// GDS hooks: when kernel `label` completes on `node`, ring the NIC
    /// with `tags` (the front-end doorbell of GPUDirect Async).
    gds_hooks: HashMap<(u32, String), Vec<Tag>>,
}

impl Cluster {
    /// Assemble a cluster.
    ///
    /// `mem` is the pre-populated memory pool (workloads allocate buffers
    /// and write initial data before construction); `programs` holds one
    /// host program per node, started at t = 0.
    ///
    /// # Panics
    /// Panics if the configuration is invalid, `mem` has the wrong node
    /// count, or `programs.len() != n_nodes`.
    pub fn new(config: ClusterConfig, mem: MemPool, programs: Vec<HostProgram>) -> Self {
        config.validate().expect("invalid cluster config");
        let n = config.n_nodes as usize;
        assert_eq!(mem.node_count(), n, "memory pool node count mismatch");
        assert_eq!(programs.len(), n, "one host program per node required");

        let cpus: Vec<Cpu> = programs
            .into_iter()
            .map(|p| Cpu::new(config.host.clone(), p))
            .collect();
        let gpus: Vec<Gpu> = (0..n).map(|_| Gpu::new(config.gpu.clone())).collect();
        let nics: Vec<Nic> = (0..n)
            .map(|i| Nic::new(NodeId(i as u32), config.nic.clone()))
            .collect();
        let fabric = Fabric::new(n, config.fabric.clone());

        let mut engine = Engine::new();
        for node in 0..n as u32 {
            engine.schedule_at(SimTime::ZERO, Event::Cpu(node, CpuEvent::Step));
        }

        Cluster {
            config,
            mem,
            fabric,
            cpus,
            gpus,
            nics,
            engine,
            log: Vec::new(),
            finish_times: vec![None; n],
            gds_hooks: HashMap::new(),
        }
    }

    /// Attach a completion queue to node `n`'s NIC (the conventional
    /// notification channel; see [`gtn_nic::cq`]).
    pub fn attach_cq(&mut self, n: u32, cq: gtn_nic::cq::CqDesc) {
        self.nics[n as usize].attach_cq(cq);
    }

    /// Register a GDS kernel-boundary doorbell: when `label` completes on
    /// `node`, the GPU front-end writes `tag` to the NIC trigger address —
    /// no CPU on the critical path, but strictly after the kernel boundary.
    pub fn gds_doorbell_on_done(&mut self, node: u32, label: &str, tag: Tag) {
        self.gds_hooks
            .entry((node, label.to_owned()))
            .or_default()
            .push(tag);
    }

    /// The shared memory pool.
    pub fn mem(&self) -> &MemPool {
        &self.mem
    }

    /// Mutable access to memory (verification after a run).
    pub fn mem_mut(&mut self) -> &mut MemPool {
        &mut self.mem
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Node `n`'s NIC (stats, trigger diagnostics).
    pub fn nic(&self, n: u32) -> &Nic {
        &self.nics[n as usize]
    }

    /// Node `n`'s GPU.
    pub fn gpu(&self, n: u32) -> &Gpu {
        &self.gpus[n as usize]
    }

    /// Node `n`'s CPU.
    pub fn cpu(&self, n: u32) -> &Cpu {
        &self.cpus[n as usize]
    }

    /// The activity log (empty unless `config.log_events`).
    pub fn log(&self) -> &[LogRecord] {
        &self.log
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn record(&mut self, at: SimTime, node: u32, kind: LogKind) {
        if self.config.log_events {
            self.log.push(LogRecord { at, node, kind });
        }
    }

    /// Run to completion (calendar drain). Returns per-node finish times
    /// and whether every host program completed.
    pub fn run(&mut self) -> ClusterResult {
        // The engine and the component vectors are disjoint fields, but the
        // handler closure needs `&mut self`-ish access to all of them, so we
        // drive the loop manually via `step`.
        loop {
            let Some((now, ev)) = self.engine.step() else {
                break;
            };
            self.dispatch(now, ev);
            if self.engine.events_processed() >= 400_000_000 {
                break; // livelock guard; surfaces as completed=false
            }
        }
        let completed = self.finish_times.iter().all(Option::is_some);
        let makespan = self
            .finish_times
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO);
        ClusterResult {
            finish_times: self.finish_times.clone(),
            makespan,
            completed,
            events: self.engine.events_processed(),
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Cpu(n, ev) => {
                let outs = self.cpus[n as usize].handle(now, ev, &mut self.mem);
                for out in outs {
                    self.route_cpu(n, out);
                }
            }
            Event::Gpu(n, ev) => {
                // Log the protocol-relevant internal transitions.
                if let GpuEvent::Dispatch(kid) = &ev {
                    self.record(now, n, LogKind::KernelDispatched(kid.0));
                }
                let outs = self.gpus[n as usize].handle(now, ev, &mut self.mem);
                for out in outs {
                    self.route_gpu(n, out);
                }
            }
            Event::Nic(n, ev) => {
                match &ev {
                    NicEvent::DmaReadDone(_) => self.record(now, n, LogKind::PutDmaDone),
                    NicEvent::RxArrive(_) => self.record(now, n, LogKind::MessageArrived),
                    NicEvent::RxDone(_) => self.record(now, n, LogKind::MessageCommitted),
                    _ => {}
                }
                let outs =
                    self.nics[n as usize].handle(now, ev, &mut self.mem, &mut self.fabric);
                for out in outs {
                    self.route_nic(n, out);
                }
            }
        }
    }

    fn route_cpu(&mut self, n: u32, out: CpuOutput) {
        match out {
            CpuOutput::Local { at, ev } => self.engine.schedule_at(at, Event::Cpu(n, ev)),
            CpuOutput::EnqueueKernel { at, launch } => {
                self.record(at, n, LogKind::KernelEnqueued);
                self.engine
                    .schedule_at(at, Event::Gpu(n, GpuEvent::Enqueue(launch)));
            }
            CpuOutput::Doorbell { at, cmd } => {
                self.record(at, n, LogKind::DoorbellRung);
                let delay = self.nics[n as usize].doorbell_delay();
                self.engine
                    .schedule_at(at + delay, Event::Nic(n, NicEvent::Doorbell(cmd)));
            }
            CpuOutput::TriggerWrite { at, tag } => {
                self.record(at, n, LogKind::TriggerWrite(tag.0));
                let delay = self.nics[n as usize].trigger_route_delay();
                self.engine
                    .schedule_at(at + delay, Event::Nic(n, NicEvent::TriggerWrite(tag)));
            }
            CpuOutput::Finished { at } => {
                self.record(at, n, LogKind::CpuFinished);
                self.finish_times[n as usize] = Some(at);
            }
        }
    }

    fn route_gpu(&mut self, n: u32, out: GpuOutput) {
        match out {
            GpuOutput::Local { at, ev } => self.engine.schedule_at(at, Event::Gpu(n, ev)),
            GpuOutput::TriggerWrite { at, tag } => {
                self.record(at, n, LogKind::TriggerWrite(tag.0));
                let delay = self.nics[n as usize].trigger_route_delay();
                self.engine
                    .schedule_at(at + delay, Event::Nic(n, NicEvent::TriggerWrite(tag)));
            }
            GpuOutput::TriggerWriteDyn { at, tag, fields } => {
                self.record(at, n, LogKind::TriggerWrite(tag.0));
                let delay = self.nics[n as usize].trigger_route_delay();
                self.engine.schedule_at(
                    at + delay,
                    Event::Nic(n, NicEvent::TriggerWriteDyn(tag, fields)),
                );
            }
            GpuOutput::KernelDone { kid, at, label } => {
                self.record(
                    at,
                    n,
                    LogKind::KernelDone {
                        kid: kid.0,
                        label: label.clone(),
                    },
                );
                // GDS hook: front-end rings the NIC at the kernel boundary.
                if let Some(tags) = self.gds_hooks.get(&(n, label.clone())) {
                    let ring = at + SimDuration::from_ns(GDS_DOORBELL_NS);
                    let delay = self.nics[n as usize].trigger_route_delay();
                    for &tag in tags.clone().iter() {
                        self.record(ring, n, LogKind::TriggerWrite(tag.0));
                        self.engine
                            .schedule_at(ring + delay, Event::Nic(n, NicEvent::TriggerWrite(tag)));
                    }
                }
                // Host runtime observes completion.
                self.engine
                    .schedule_at(at, Event::Cpu(n, CpuEvent::KernelDone(label)));
            }
        }
    }

    fn route_nic(&mut self, n: u32, out: NicOutput) {
        match out {
            NicOutput::Local { at, ev } => self.engine.schedule_at(at, Event::Nic(n, ev)),
            NicOutput::Remote { node, at, ev } => {
                self.engine.schedule_at(at, Event::Nic(node.0, ev));
            }
        }
    }

    /// Convenience: run and assert completion, returning the makespan.
    pub fn run_to_completion(&mut self) -> SimTime {
        let r = self.run();
        r.expect_completed()
    }

    /// Engine drain state (for tests poking at partial runs).
    pub fn pending_events(&self) -> usize {
        self.engine.pending()
    }

    /// Run outcome sanity helper used by tests: did the engine drain?
    pub fn drained(&self) -> bool {
        self.engine.pending() == 0
    }
}

// RunOutcome re-export kept for API completeness of run_until-style uses.
#[allow(unused_imports)]
use RunOutcome as _;

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_gpu::kernel::ProgramBuilder;
    use gtn_gpu::KernelLaunch;
    use gtn_mem::scope::{MemOrdering, MemScope};
    use gtn_mem::Addr;
    use gtn_nic::nic::NicCommand;
    use gtn_nic::op::{NetOp, Notify};

    /// End-to-end GPU-TN ping: node 0's CPU registers a triggered put and
    /// launches a kernel that fills the buffer and triggers mid-kernel;
    /// node 1's CPU polls for the payload.
    fn gputn_ping() -> (Cluster, Addr, Addr) {
        let config = ClusterConfig::table2(2);
        let mut mem = MemPool::new(2);
        let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 64, "src"));
        let dst = Addr::base(NodeId(1), mem.alloc(NodeId(1), 64, "dst"));
        let flag = Addr::base(NodeId(1), mem.alloc(NodeId(1), 8, "flag"));
        let comp = Addr::base(NodeId(0), mem.alloc(NodeId(0), 8, "comp"));

        let kernel = ProgramBuilder::new()
            .compute(gtn_sim::time::SimDuration::from_ns(430))
            .func(move |mem, _| mem.write(src, &[0x42; 64]))
            .fence(MemScope::System, MemOrdering::Release)
            .trigger_store(|_| Tag(1))
            .build()
            .expect("valid kernel");

        let mut p0 = HostProgram::new();
        p0.nic_post(NicCommand::TriggeredPut {
            tag: Tag(1),
            threshold: 1,
            op: NetOp::Put {
                src,
                len: 64,
                target: NodeId(1),
                dst,
                notify: Some(Notify { flag, add: 1, chain: None }),
                completion: Some(comp),
            },
        })
        .launch(KernelLaunch::new(kernel, 1, 64, "ping"))
        .wait_kernel("ping");

        let mut p1 = HostProgram::new();
        p1.poll(flag, 1);

        (
            Cluster::new(config, mem, vec![p0, p1]),
            dst,
            flag,
        )
    }

    #[test]
    fn gputn_ping_delivers_payload() {
        let (mut cluster, dst, flag) = gputn_ping();
        let result = cluster.run();
        assert!(result.completed, "{result:?}");
        assert_eq!(cluster.mem().read(dst, 64), &[0x42; 64]);
        assert_eq!(cluster.mem().read_u64(flag), 1);
        assert!(result.makespan < SimTime::from_us(10), "{}", result.makespan);
        assert_eq!(cluster.nic(0).stats().counter("fired_at_trigger"), 1);
    }

    #[test]
    fn gputn_target_completes_before_initiator_kernel_ends() {
        // The Fig. 8 phenomenon: "the target node receives the network data
        // before the kernel on the initiator completes."
        let (mut cluster, _, _) = gputn_ping();
        cluster.run();
        let commit = cluster
            .log()
            .iter()
            .find(|r| r.node == 1 && r.kind == LogKind::MessageCommitted)
            .expect("message committed")
            .at;
        let kernel_done = cluster
            .log()
            .iter()
            .find_map(|r| match &r.kind {
                LogKind::KernelDone { label, .. } if r.node == 0 && label == "ping" => Some(r.at),
                _ => None,
            })
            .expect("kernel done");
        assert!(
            commit < kernel_done,
            "GPU-TN should deliver intra-kernel: commit {commit} vs done {kernel_done}"
        );
    }

    #[test]
    fn gds_hook_rings_doorbell_at_kernel_boundary() {
        let config = ClusterConfig::table2(2);
        let mut mem = MemPool::new(2);
        let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 64, "src"));
        let dst = Addr::base(NodeId(1), mem.alloc(NodeId(1), 64, "dst"));
        let flag = Addr::base(NodeId(1), mem.alloc(NodeId(1), 8, "flag"));
        mem.write(src, &[7; 64]);

        let kernel = ProgramBuilder::new()
            .compute(gtn_sim::time::SimDuration::from_ns(430))
            .build()
            .unwrap();

        let mut p0 = HostProgram::new();
        p0.nic_post(NicCommand::TriggeredPut {
            tag: Tag(9),
            threshold: 1,
            op: NetOp::Put {
                src,
                len: 64,
                target: NodeId(1),
                dst,
                notify: Some(Notify { flag, add: 1, chain: None }),
                completion: None,
            },
        })
        .launch(KernelLaunch::new(kernel, 1, 64, "gdsk"))
        .wait_kernel("gdsk");
        let mut p1 = HostProgram::new();
        p1.poll(flag, 1);

        let mut cluster = Cluster::new(config, mem, vec![p0, p1]);
        cluster.gds_doorbell_on_done(0, "gdsk", Tag(9));
        let result = cluster.run();
        assert!(result.completed);
        assert_eq!(cluster.mem().read(dst, 64), &[7; 64]);

        // GDS delivers only after the kernel boundary.
        let commit = cluster
            .log()
            .iter()
            .find(|r| r.node == 1 && r.kind == LogKind::MessageCommitted)
            .unwrap()
            .at;
        let kernel_done = cluster
            .log()
            .iter()
            .find_map(|r| match &r.kind {
                LogKind::KernelDone { .. } if r.node == 0 => Some(r.at),
                _ => None,
            })
            .unwrap();
        assert!(commit > kernel_done, "GDS is kernel-boundary");
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let config = ClusterConfig::table2(1);
        let mut mem = MemPool::new(1);
        let flag = Addr::base(NodeId(0), mem.alloc(NodeId(0), 8, "never"));
        let mut p0 = HostProgram::new();
        // Wait for a kernel nobody launches: CPU blocks, engine drains.
        p0.wait_kernel("ghost");
        let mut cluster = Cluster::new(config, mem, vec![p0]);
        let result = cluster.run();
        assert!(!result.completed);
        assert_eq!(result.finish_times, vec![None]);
        let _ = flag;
    }

    #[test]
    fn log_records_protocol_moments_in_order() {
        let (mut cluster, _, _) = gputn_ping();
        cluster.run();
        let kinds: Vec<&LogKind> = cluster.log().iter().map(|r| &r.kind).collect();
        // Doorbell (post) precedes trigger write precedes commit.
        let pos = |pred: &dyn Fn(&LogKind) -> bool| kinds.iter().position(|k| pred(k)).unwrap();
        let doorbell = pos(&|k| matches!(k, LogKind::DoorbellRung));
        let trig = pos(&|k| matches!(k, LogKind::TriggerWrite(1)));
        let commit = pos(&|k| matches!(k, LogKind::MessageCommitted));
        assert!(doorbell < trig && trig < commit, "{kinds:?}");
    }

    #[test]
    fn relaxed_sync_overlap_post_after_trigger_still_delivers() {
        // §3.2/§4.1: launch the kernel FIRST, post the triggered op LATER.
        let config = ClusterConfig::table2(2);
        let mut mem = MemPool::new(2);
        let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 64, "src"));
        let dst = Addr::base(NodeId(1), mem.alloc(NodeId(1), 64, "dst"));
        let flag = Addr::base(NodeId(1), mem.alloc(NodeId(1), 8, "flag"));

        let kernel = ProgramBuilder::new()
            .func(move |mem, _| mem.write(src, &[0x99; 64]))
            .fence(MemScope::System, MemOrdering::Release)
            .trigger_store(|_| Tag(5))
            .build()
            .unwrap();

        let mut p0 = HostProgram::new();
        p0.launch(KernelLaunch::new(kernel, 1, 64, "k"))
            // Give the kernel a head start so its trigger lands first.
            .compute(gtn_sim::time::SimDuration::from_us(10))
            .nic_post(NicCommand::TriggeredPut {
                tag: Tag(5),
                threshold: 1,
                op: NetOp::Put {
                    src,
                    len: 64,
                    target: NodeId(1),
                    dst,
                    notify: Some(Notify { flag, add: 1, chain: None }),
                    completion: None,
                },
            })
            .wait_kernel("k");
        let mut p1 = HostProgram::new();
        p1.poll(flag, 1);

        let mut cluster = Cluster::new(config, mem, vec![p0, p1]);
        let result = cluster.run();
        assert!(result.completed);
        assert_eq!(cluster.mem().read(dst, 64), &[0x99; 64]);
        assert_eq!(cluster.nic(0).triggers().early_allocations(), 1);
        assert_eq!(cluster.nic(0).stats().counter("fired_at_post"), 1);
    }
}
