//! The full Table 2 configuration, aggregated.

use crate::membership::FailureConfig;
use gtn_fabric::FabricConfig;
use gtn_gpu::GpuConfig;
use gtn_host::HostConfig;
use gtn_nic::NicConfig;
use serde::{Deserialize, Serialize};

/// Configuration of a simulated cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes (each a CPU+GPU+NIC SoC).
    pub n_nodes: u32,
    /// Host CPU parameters.
    pub host: HostConfig,
    /// GPU parameters.
    pub gpu: GpuConfig,
    /// NIC parameters (including the trigger-list lookup kind).
    pub nic: NicConfig,
    /// Interconnect parameters.
    pub fabric: FabricConfig,
    /// Record the activity log (on for experiments that decompose
    /// latencies; off for large sweeps).
    pub log_events: bool,
    /// Stall watchdog horizon, simulated nanoseconds: if this much
    /// simulated time passes with every dispatched event classified as an
    /// idle poll retry (no CPU pc movement, no GPU op retired, no NIC
    /// activity), the run is declared stalled and a
    /// [`crate::stall::StallReport`] is produced instead of spinning to
    /// the event cap. Must comfortably exceed the longest legitimate gap
    /// between progress events (compute phases, retransmit timeouts).
    pub stall_timeout_ns: u64,
    /// Failure detection (heartbeats/leases) and the recovery policy. Off
    /// by default: no probe events exist, so runs without it are
    /// bit-identical to the pre-detection model.
    pub failure: FailureConfig,
    /// Calendar shard count for the simulation engine. `0` (the default)
    /// resolves from the `GTN_SIM_SHARDS` environment knob, falling back
    /// to `1` — one flat calendar, the classic sequential path. Any value
    /// is clamped to `n_nodes`; every count dispatches the **same**
    /// bit-identical event sequence (see `gtn_sim::shard::ShardedQueue`),
    /// so this knob can never change results, only execution structure.
    #[serde(default)]
    pub sim_shards: u32,
}

impl ClusterConfig {
    /// The paper's Table 2 configuration for `n_nodes` nodes.
    pub fn table2(n_nodes: u32) -> Self {
        assert!(n_nodes >= 1);
        ClusterConfig {
            n_nodes,
            host: HostConfig::default(),
            gpu: GpuConfig::default(),
            nic: NicConfig::default(),
            fabric: FabricConfig::default(),
            log_events: true,
            // 50 ms of simulated dead air: >10x the largest retransmit
            // timeout an 8 MiB transfer can back off to, so the watchdog
            // never fires on a run that is still (slowly) making progress.
            stall_timeout_ns: 50_000_000,
            failure: FailureConfig::off(),
            sim_shards: 0,
        }
    }

    /// The shard count a cluster built from this config will actually use:
    /// `sim_shards`, or — when 0 — the `GTN_SIM_SHARDS` environment knob,
    /// or 1; always clamped to `[1, n_nodes]` (a shard needs at least one
    /// node, and extra empty shards would only add merge overhead).
    pub fn effective_sim_shards(&self) -> u32 {
        let requested = if self.sim_shards == 0 {
            gtn_sim::shard::shards_from_env().unwrap_or(1)
        } else {
            self.sim_shards
        };
        requested.clamp(1, self.n_nodes.max(1))
    }

    /// Validate all component configurations.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        self.host.validate()?;
        self.gpu.validate()?;
        self.nic.validate()?;
        self.fabric.validate()?;
        if self.stall_timeout_ns == 0 {
            return Err("stall_timeout_ns must be nonzero (watchdog would fire instantly)".into());
        }
        self.failure.validate()?;
        Ok(())
    }

    /// Render the configuration as a Table 2-style report (used by the
    /// `table2_config` bench to print paper-vs-model side by side).
    pub fn render_table2(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "CPU and Memory Configuration");
        let _ = writeln!(
            s,
            "  Type               {} cores @ {} GHz (paper: 8 wide OOO, 4GHz, 8 cores)",
            self.host.cores, self.host.clock_ghz
        );
        let _ = writeln!(s, "GPU Configuration");
        let _ = writeln!(
            s,
            "  Type               {} CUs @ {} GHz (paper: 1 GHz, 24 Compute Units)",
            self.gpu.num_cus, self.gpu.clock_ghz
        );
        let _ = writeln!(
            s,
            "  Kernel Latencies   {:?} launch / {} ns teardown (paper: 1.5us / 1.5us)",
            self.gpu.launch, self.gpu.teardown_ns
        );
        let _ = writeln!(s, "Network Configuration");
        let _ = writeln!(
            s,
            "  Latency            {} ns link, {} ns switch (paper: 100ns / 100ns)",
            self.fabric.link_latency_ns, self.fabric.switch_latency_ns
        );
        let _ = writeln!(
            s,
            "  Bandwidth          {} Gbps (paper: 100 Gbps)",
            self.fabric.link_gbps
        );
        let _ = writeln!(
            s,
            "  Topology           {:?} (paper: star, single switch)",
            self.fabric.topology
        );
        let _ = writeln!(
            s,
            "  Trigger lookup     {} (paper prototype: <=16 active, associative)",
            self.nic.lookup.name()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_valid_and_matches_paper_constants() {
        let c = ClusterConfig::table2(8);
        assert!(c.validate().is_ok());
        assert_eq!(c.n_nodes, 8);
        assert_eq!(c.gpu.num_cus, 24);
        assert_eq!(c.host.cores, 8);
        assert_eq!(c.fabric.link_gbps, 100.0);
    }

    #[test]
    fn render_mentions_all_sections() {
        let s = ClusterConfig::table2(4).render_table2();
        for needle in [
            "CPU and Memory",
            "GPU Configuration",
            "Network Configuration",
            "100 Gbps",
        ] {
            assert!(s.contains(needle), "missing {needle}:\n{s}");
        }
    }

    #[test]
    fn zero_nodes_invalid() {
        let mut c = ClusterConfig::table2(1);
        c.n_nodes = 0;
        assert!(c.validate().is_err());
    }
}
