//! Messaging granularities of the kernel API (§4.2, Fig. 7).
//!
//! GPU-TN lets the kernel programmer pick how many trigger writes make one
//! message: one per **work-item** (Fig. 7a), one per **work-group** after a
//! barrier (Fig. 7b), one per **kernel** using the NIC counter as the
//! cross-work-group synchronizer (Fig. 7c), or **mixed** shapes like one
//! message per pair of work-items via `threshold = 2` with half as many
//! tags (§4.2.3).
//!
//! [`MessagePlan`] computes, for a granularity and dispatch geometry, the
//! matched pair the programming model requires: the NIC-side registrations
//! `(tag, threshold)` and the kernel-side trigger ops. A plan's
//! registrations and its kernel fragment always agree — the property test
//! fires every plan against a trigger list and checks that exactly
//! `n_messages` operations fire.

use gtn_gpu::kernel::ProgramBuilder;
use gtn_nic::Tag;
use serde::{Deserialize, Serialize};

/// How many trigger writes gate each message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// One message per work-item (Fig. 7a): `n_wgs × items` tags,
    /// threshold 1.
    WorkItem,
    /// One message per work-group (Fig. 7b): `n_wgs` tags, threshold 1,
    /// leader store after a barrier.
    WorkGroup,
    /// One message per kernel (Fig. 7c): a single tag with
    /// `threshold = n_wgs`; the NIC counter synchronizes the work-groups.
    Kernel,
    /// One message per `k` work-items (§4.2.3 mixed granularity):
    /// `total_items / k` tags with `threshold = k`.
    PerItems(u32),
}

impl Granularity {
    /// Short name for reports.
    pub fn name(self) -> String {
        match self {
            Granularity::WorkItem => "work-item".into(),
            Granularity::WorkGroup => "work-group".into(),
            Granularity::Kernel => "kernel".into(),
            Granularity::PerItems(k) => format!("per-{k}-items"),
        }
    }
}

/// The matched NIC/kernel plan for one granularity.
#[derive(Debug, Clone)]
pub struct MessagePlan {
    /// Granularity planned.
    pub granularity: Granularity,
    /// NIC-side registrations: `(tag, threshold)` for the host's
    /// `TrigPut` calls (Fig. 6 step 2).
    pub registrations: Vec<(Tag, u64)>,
    /// Dispatch geometry the plan was computed for.
    pub n_wgs: u32,
    /// Work-items per work-group.
    pub items_per_wg: u32,
    /// First tag used (tags are `base_tag ..`).
    pub base_tag: u64,
}

impl MessagePlan {
    /// Build a plan.
    ///
    /// # Panics
    /// Panics on degenerate geometry (zero work-groups/items) or a
    /// [`Granularity::PerItems`] divisor that does not divide the total
    /// item count.
    pub fn new(granularity: Granularity, n_wgs: u32, items_per_wg: u32, base_tag: u64) -> Self {
        assert!(n_wgs > 0 && items_per_wg > 0, "degenerate geometry");
        let total_items = n_wgs as u64 * items_per_wg as u64;
        let registrations: Vec<(Tag, u64)> = match granularity {
            Granularity::WorkItem => (0..total_items).map(|i| (Tag(base_tag + i), 1)).collect(),
            Granularity::WorkGroup => (0..n_wgs as u64).map(|i| (Tag(base_tag + i), 1)).collect(),
            Granularity::Kernel => vec![(Tag(base_tag), n_wgs as u64)],
            Granularity::PerItems(k) => {
                assert!(k > 0, "PerItems(0)");
                assert_eq!(
                    total_items % k as u64,
                    0,
                    "PerItems({k}) must divide total items {total_items}"
                );
                (0..total_items / k as u64)
                    .map(|i| (Tag(base_tag + i), k as u64))
                    .collect()
            }
        };
        MessagePlan {
            granularity,
            registrations,
            n_wgs,
            items_per_wg,
            base_tag,
        }
    }

    /// Number of network messages this plan produces.
    pub fn n_messages(&self) -> u64 {
        self.registrations.len() as u64
    }

    /// Total trigger writes the kernel will issue.
    pub fn n_trigger_writes(&self) -> u64 {
        match self.granularity {
            Granularity::WorkItem | Granularity::PerItems(_) => {
                self.n_wgs as u64 * self.items_per_wg as u64
            }
            Granularity::WorkGroup | Granularity::Kernel => self.n_wgs as u64,
        }
    }

    /// Append this plan's trigger ops to a kernel under construction. The
    /// caller is responsible for having written the send buffer first; this
    /// fragment begins with the §4.2.6 system-scope release fence.
    pub fn attach_trigger_ops(&self, builder: ProgramBuilder) -> ProgramBuilder {
        use gtn_mem::scope::{MemOrdering, MemScope};
        let base = self.base_tag;
        let items = self.items_per_wg;
        let builder = builder.fence(MemScope::System, MemOrdering::Release);
        match self.granularity {
            Granularity::WorkItem => builder.trigger_store_each(items, move |ctx, i| {
                Tag(base + (ctx.wg * ctx.items + i) as u64)
            }),
            Granularity::WorkGroup => builder
                .barrier()
                .trigger_store(move |ctx| Tag(base + ctx.wg as u64)),
            Granularity::Kernel => builder.barrier().trigger_store(move |_| Tag(base)),
            Granularity::PerItems(k) => builder.trigger_store_each(items, move |ctx, i| {
                let global_item = (ctx.wg * ctx.items + i) as u64;
                Tag(base + global_item / k as u64)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_nic::lookup::LookupKind;
    use gtn_nic::op::NetOp;
    use gtn_nic::trigger::TriggerList;

    fn dummy_put() -> NetOp {
        use gtn_mem::{Addr, NodeId, RegionId};
        NetOp::Put {
            src: Addr::base(NodeId(0), RegionId(0)),
            len: 8,
            target: NodeId(1),
            dst: Addr::base(NodeId(1), RegionId(0)),
            notify: None,
            completion: None,
        }
    }

    /// Register a plan with a trigger list, replay the kernel's trigger
    /// writes, and count fires.
    fn fires_for(plan: &MessagePlan) -> u64 {
        let mut list = TriggerList::new(LookupKind::HashTable);
        for &(tag, threshold) in &plan.registrations {
            list.register(tag, dummy_put(), threshold).unwrap();
        }
        // Emulate the kernel: every work-group / item writes its tag.
        for wg in 0..plan.n_wgs {
            match plan.granularity {
                Granularity::WorkGroup => {
                    list.trigger(Tag(plan.base_tag + wg as u64)).unwrap();
                }
                Granularity::Kernel => {
                    list.trigger(Tag(plan.base_tag)).unwrap();
                }
                Granularity::WorkItem => {
                    for i in 0..plan.items_per_wg {
                        list.trigger(Tag(plan.base_tag + (wg * plan.items_per_wg + i) as u64))
                            .unwrap();
                    }
                }
                Granularity::PerItems(k) => {
                    for i in 0..plan.items_per_wg {
                        let g = (wg * plan.items_per_wg + i) as u64;
                        list.trigger(Tag(plan.base_tag + g / k as u64)).unwrap();
                    }
                }
            }
        }
        list.fired_total()
    }

    #[test]
    fn work_item_plan_is_one_message_per_item() {
        let plan = MessagePlan::new(Granularity::WorkItem, 4, 64, 100);
        assert_eq!(plan.n_messages(), 256);
        assert_eq!(plan.n_trigger_writes(), 256);
        assert!(plan.registrations.iter().all(|&(_, t)| t == 1));
        assert_eq!(fires_for(&plan), 256);
    }

    #[test]
    fn work_group_plan_is_one_message_per_wg() {
        let plan = MessagePlan::new(Granularity::WorkGroup, 8, 64, 0);
        assert_eq!(plan.n_messages(), 8);
        assert_eq!(plan.n_trigger_writes(), 8);
        assert_eq!(fires_for(&plan), 8);
    }

    #[test]
    fn kernel_plan_uses_the_counter_as_barrier() {
        // Fig. 7c: one tag, threshold = number of work-groups.
        let plan = MessagePlan::new(Granularity::Kernel, 24, 64, 7);
        assert_eq!(plan.n_messages(), 1);
        assert_eq!(plan.registrations, vec![(Tag(7), 24)]);
        assert_eq!(fires_for(&plan), 1);
    }

    #[test]
    fn pairs_plan_halves_the_tags() {
        // §4.2.3: "send a message for every pair of work-items by setting
        // the threshold for the operation to 2 ... and using half as many
        // tags".
        let item_plan = MessagePlan::new(Granularity::WorkItem, 2, 64, 0);
        let pair_plan = MessagePlan::new(Granularity::PerItems(2), 2, 64, 0);
        assert_eq!(pair_plan.n_messages() * 2, item_plan.n_messages());
        assert!(pair_plan.registrations.iter().all(|&(_, t)| t == 2));
        assert_eq!(fires_for(&pair_plan), 64);
    }

    #[test]
    fn attached_ops_validate_under_fence_discipline() {
        for g in [
            Granularity::WorkItem,
            Granularity::WorkGroup,
            Granularity::Kernel,
            Granularity::PerItems(4),
        ] {
            let plan = MessagePlan::new(g, 4, 64, 0);
            let b = ProgramBuilder::new().func(|_, _| {});
            let program = plan.attach_trigger_ops(b).build();
            assert!(program.is_ok(), "{g:?}: {program:?}");
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_per_items_rejected() {
        let _ = MessagePlan::new(Granularity::PerItems(7), 2, 64, 0);
    }

    #[test]
    fn names() {
        assert_eq!(Granularity::WorkItem.name(), "work-item");
        assert_eq!(Granularity::PerItems(2).name(), "per-2-items");
    }
}
