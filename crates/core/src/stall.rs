//! Structured stall diagnostics.
//!
//! A cluster run that does not complete used to surface as a bare
//! `completed = false` plus raw finish times — fine for a test assertion,
//! useless for figuring out *why* four nodes are wedged. [`StallReport`]
//! names every stuck node, what it is blocked on (the polled flag and its
//! current value, the awaited kernel), the NIC-side state that explains the
//! wedge (pending trigger entries that never fired, in-flight retransmits,
//! messages abandoned after retry exhaustion), and the tail of the activity
//! log. [`crate::cluster::ClusterResult::expect_completed`] renders it in
//! the panic message, so a hung integration test reads like a diagnosis
//! instead of a core dump.

use crate::cluster::LogRecord;
use gtn_mem::{Addr, NodeId};
use gtn_nic::reliability::DeliveryFailure;
use gtn_nic::Tag;
use gtn_sim::time::SimTime;
use std::fmt;

/// Why the run loop gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StallReason {
    /// The event calendar drained with unfinished host programs: a classic
    /// deadlock (e.g. a wait on a kernel nobody launches, a blocked CPU
    /// whose wake-up message was abandoned).
    Deadlock,
    /// The watchdog fired: `idle_ns` simulated nanoseconds elapsed in which
    /// every dispatched event was an idle poll retry — a livelock (spinning
    /// CPUs/GPUs with nothing in flight that could ever satisfy them).
    Livelock {
        /// Simulated ns of pure spinning before the watchdog tripped.
        idle_ns: u64,
    },
    /// The absolute event-count backstop tripped first (should only happen
    /// with a watchdog horizon far above the default).
    EventCap,
    /// The calendar drained with commits parked on exhausted NIC resources
    /// (a full bounded completion queue whose consumer never drains, or
    /// sends starved of flow-control credit): not a protocol deadlock but
    /// resource starvation — raise the exhausted capacity or drain rate.
    ResourceStarvation,
    /// The failure detector declared a peer dead (heartbeats stopped past
    /// the lease) and the run was terminated under the `Abort` recovery
    /// policy — a crash-stop failure, not a protocol bug. Names the
    /// culprit so post-mortems (and recovery drivers) know who to route
    /// around.
    PeerDead {
        /// The node declared dead.
        peer: u32,
        /// The first surviving node whose lease on `peer` expired.
        detector: u32,
        /// The injected component the death traces back to — ground truth
        /// resolved from the fault plan (the crashed node/NIC, or the
        /// severed link/edge that isolated the peer). `None` when no
        /// injected fault names the peer (e.g. a detector false positive).
        culprit: Option<gtn_fabric::CrashComponent>,
    },
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallReason::Deadlock => write!(f, "deadlock (event calendar drained)"),
            StallReason::Livelock { idle_ns } => {
                write!(
                    f,
                    "livelock ({idle_ns} ns of idle polling with nothing in flight)"
                )
            }
            StallReason::EventCap => write!(f, "event-count backstop reached"),
            StallReason::ResourceStarvation => write!(
                f,
                "resource starvation (commits parked on exhausted NIC resources)"
            ),
            StallReason::PeerDead {
                peer,
                detector,
                culprit,
            } => {
                write!(
                    f,
                    "peer dead (node {peer} declared dead by node {detector}'s failure detector"
                )?;
                if let Some(c) = culprit {
                    write!(f, "; culprit {c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// What a stuck node's host program is blocked on.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockedOn {
    /// Spinning on a flag that never reached the wake threshold.
    Poll {
        /// The polled address.
        addr: Addr,
        /// Wake condition.
        at_least: u64,
        /// The flag's value at stall time — the gap to `at_least` says how
        /// much of the protocol never happened.
        current: u64,
    },
    /// Blocked in `WaitKernel` on a kernel that never completed.
    Kernel {
        /// The awaited launch label.
        label: String,
    },
    /// Stuck at some other op (rendered via its Debug form).
    Op {
        /// Debug rendering of the current host op.
        desc: String,
    },
}

impl fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockedOn::Poll {
                addr,
                at_least,
                current,
            } => {
                write!(
                    f,
                    "poll on {addr:?} (needs >= {at_least}, currently {current})"
                )
            }
            BlockedOn::Kernel { label } => write!(f, "wait for kernel {label:?}"),
            BlockedOn::Op { desc } => write!(f, "host op {desc}"),
        }
    }
}

/// One stuck node's state.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStall {
    /// The node.
    pub node: u32,
    /// What its host program is blocked on.
    pub blocked_on: BlockedOn,
    /// Program counter at stall time.
    pub pc: usize,
    /// Total ops in the host program.
    pub program_len: usize,
    /// Kernels still in flight on this node's GPU.
    pub kernels_in_flight: usize,
    /// Trigger-list entries never consumed: `(tag, counter, threshold,
    /// armed)`. An armed entry whose counter sits below threshold is a
    /// trigger write that never arrived.
    pub pending_triggers: Vec<(Tag, u64, Option<u64>, bool)>,
    /// Messages this node's NIC is still retrying: `(seq, target,
    /// attempts)`.
    pub in_flight_retries: Vec<(u64, NodeId, u32)>,
    /// Messages abandoned after retry exhaustion — usually the smoking gun.
    pub delivery_failures: Vec<DeliveryFailure>,
    /// Trigger entries spilled to the host-memory overflow table at stall
    /// time (CAM pressure — matches still work, just slower).
    pub trigger_overflow: usize,
    /// Receive commits / completion entries parked on a full bounded CQ.
    /// Nonzero here is the signature of CQ-consumer starvation.
    pub cq_parked: usize,
    /// New sends queued for flow-control credit. Nonzero with no in-flight
    /// retries means credits never came back.
    pub flow_queued: usize,
    /// Trigger-list entries shed by per-partition admission control
    /// (multi-tenant serving). Nonzero is expected overload shedding, not
    /// an error — but a stalled node that shed its own completion trigger
    /// shows up here.
    pub admission_shed: u64,
}

impl fmt::Display for NodeStall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  node {}: blocked on {} (pc {}/{}, {} kernel(s) in flight)",
            self.node, self.blocked_on, self.pc, self.program_len, self.kernels_in_flight
        )?;
        for (tag, counter, threshold, armed) in &self.pending_triggers {
            writeln!(
                f,
                "    pending trigger {tag}: counter {counter}, threshold {threshold:?}, armed {armed}"
            )?;
        }
        for (seq, target, attempts) in &self.in_flight_retries {
            writeln!(
                f,
                "    in-flight retry: seq {seq} -> {target:?}, {attempts} attempt(s)"
            )?;
        }
        for fail in &self.delivery_failures {
            write!(
                f,
                "    ABANDONED ({}): seq {} -> {:?} after {} attempts ({} B) at {}",
                fail.cause, fail.seq, fail.target, fail.attempts, fail.bytes, fail.at
            )?;
            if let Some(c) = &fail.culprit {
                write!(f, " [culprit {c}]")?;
            }
            writeln!(f)?;
        }
        if self.trigger_overflow > 0 {
            writeln!(
                f,
                "    trigger pressure: {} entr{} spilled to the host overflow table",
                self.trigger_overflow,
                if self.trigger_overflow == 1 {
                    "y"
                } else {
                    "ies"
                }
            )?;
        }
        if self.cq_parked > 0 {
            writeln!(
                f,
                "    CQ starvation: {} commit(s) parked on a full completion queue",
                self.cq_parked
            )?;
        }
        if self.flow_queued > 0 {
            writeln!(
                f,
                "    credit starvation: {} send(s) queued waiting for flow-control credit",
                self.flow_queued
            )?;
        }
        if self.admission_shed > 0 {
            writeln!(
                f,
                "    admission control: {} trigger entr{} shed at partition depth",
                self.admission_shed,
                if self.admission_shed == 1 { "y" } else { "ies" }
            )?;
        }
        Ok(())
    }
}

/// Full diagnosis of a run that did not complete.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// Simulated time the run gave up.
    pub at: SimTime,
    /// Why the loop stopped.
    pub reason: StallReason,
    /// Every node whose host program did not finish.
    pub nodes: Vec<NodeStall>,
    /// Events the engine clamped because a component scheduled them in the
    /// past (release builds only; debug builds assert). Nonzero means some
    /// component computed a retro-causal delay — a likely cause of the
    /// stall itself.
    pub clamped_past_events: u64,
    /// Tail of the activity log (empty when `log_events` is off).
    pub recent: Vec<LogRecord>,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stalled at {}: {}", self.at, self.reason)?;
        if self.clamped_past_events > 0 {
            writeln!(
                f,
                "  WARNING: {} event(s) scheduled in the past (clamped to now) — component bug",
                self.clamped_past_events
            )?;
        }
        writeln!(f, "{} node(s) stuck:", self.nodes.len())?;
        for node in &self.nodes {
            write!(f, "{node}")?;
        }
        if self.recent.is_empty() {
            writeln!(
                f,
                "  (activity log disabled; enable log_events for a trace tail)"
            )?;
        } else {
            writeln!(f, "  last {} activity records:", self.recent.len())?;
            for r in &self.recent {
                writeln!(f, "    {} node {} {:?}", r.at, r.node, r.kind)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_mem::RegionId;

    #[test]
    fn report_renders_every_section() {
        let report = StallReport {
            at: SimTime::from_us(42),
            reason: StallReason::Livelock { idle_ns: 1_000_000 },
            nodes: vec![NodeStall {
                node: 1,
                blocked_on: BlockedOn::Poll {
                    addr: Addr::base(NodeId(1), RegionId(3)),
                    at_least: 4,
                    current: 3,
                },
                pc: 7,
                program_len: 9,
                kernels_in_flight: 1,
                pending_triggers: vec![(Tag(5), 0, Some(1), true)],
                in_flight_retries: vec![(12, NodeId(0), 3)],
                delivery_failures: vec![DeliveryFailure {
                    at: SimTime::from_us(40),
                    seq: 11,
                    target: NodeId(0),
                    attempts: 9,
                    bytes: 64,
                    cause: gtn_nic::DeliveryCause::RetriesExhausted,
                    culprit: None,
                }],
                trigger_overflow: 2,
                cq_parked: 3,
                flow_queued: 1,
                admission_shed: 4,
            }],
            clamped_past_events: 2,
            recent: Vec::new(),
        };
        let s = report.to_string();
        for needle in [
            "livelock",
            "2 event(s) scheduled in the past",
            "node 1",
            "needs >= 4, currently 3",
            "pending trigger",
            "in-flight retry: seq 12",
            "ABANDONED (retries exhausted): seq 11",
            "2 entries spilled",
            "3 commit(s) parked",
            "1 send(s) queued",
            "4 trigger entries shed",
            "log disabled",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn deadlock_reason_renders() {
        assert!(StallReason::Deadlock.to_string().contains("drained"));
        assert!(StallReason::EventCap.to_string().contains("backstop"));
        assert!(StallReason::ResourceStarvation
            .to_string()
            .contains("starvation"));
        let dead = StallReason::PeerDead {
            peer: 3,
            detector: 0,
            culprit: None,
        }
        .to_string();
        assert!(dead.contains("node 3 declared dead by node 0"), "{dead}");
        assert!(!dead.contains("culprit"), "{dead}");
        let blamed = StallReason::PeerDead {
            peer: 3,
            detector: 0,
            culprit: Some(gtn_fabric::CrashComponent::Edge { a: 2, b: 4 }),
        }
        .to_string();
        assert!(
            blamed.contains("node 3 declared dead by node 0"),
            "{blamed}"
        );
        assert!(blamed.contains("culprit graph edge 2<->4"), "{blamed}");
    }

    #[test]
    fn peer_dead_failures_render_their_cause() {
        let fail = DeliveryFailure {
            at: SimTime::from_us(1),
            seq: 2,
            target: NodeId(4),
            attempts: 1,
            bytes: 128,
            cause: gtn_nic::DeliveryCause::PeerDead,
            culprit: Some(gtn_fabric::CrashComponent::Nic(4)),
        };
        let stall = NodeStall {
            node: 0,
            blocked_on: BlockedOn::Kernel {
                label: "ring".into(),
            },
            pc: 0,
            program_len: 1,
            kernels_in_flight: 1,
            pending_triggers: Vec::new(),
            in_flight_retries: Vec::new(),
            delivery_failures: vec![fail],
            trigger_overflow: 0,
            cq_parked: 0,
            flow_queued: 0,
            admission_shed: 0,
        };
        let s = stall.to_string();
        assert!(s.contains("ABANDONED (peer dead): seq 2"), "{s}");
        assert!(s.contains("[culprit nic 4]"), "{s}");
    }
}
