//! The four evaluated networking strategies (§5.1).
//!
//! | Strategy | Who computes | Who initiates network | When |
//! |---|---|---|---|
//! | [`Strategy::Cpu`]   | CPU (OpenMP) | CPU full stack | inline |
//! | [`Strategy::Hdn`]   | GPU | CPU full stack | kernel boundary |
//! | [`Strategy::Gds`]   | GPU | GPU front-end doorbell (CPU pre-posts) | kernel boundary |
//! | [`Strategy::GpuTn`] | GPU | GPU trigger store (CPU pre-registers) | **intra-kernel** |
//!
//! The mechanics live elsewhere — HDN is ordinary host programs over
//! [`gtn_host::mpi`], GDS uses [`crate::Cluster::gds_doorbell_on_done`],
//! GPU-TN pairs [`crate::kernel_api`] trigger plans with
//! [`gtn_nic::nic::NicCommand::TriggeredPut`] registrations — this module
//! just names them and carries shared reporting helpers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the paper's four evaluated configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// All computation and communication on the CPU (sanity baseline).
    Cpu,
    /// Host-Driven Networking: GPU compute, CPU-initiated messaging at
    /// kernel boundaries (the classic coprocessor model).
    Hdn,
    /// GPUDirect-Async-like: CPU pre-posts, GPU front-end rings the
    /// doorbell at kernel boundaries.
    Gds,
    /// GPU Triggered Networking: CPU pre-registers triggered operations,
    /// GPU fires them from inside the kernel.
    GpuTn,
}

impl Strategy {
    /// All strategies in the paper's presentation order.
    pub fn all() -> [Strategy; 4] {
        [Strategy::Cpu, Strategy::Hdn, Strategy::Gds, Strategy::GpuTn]
    }

    /// The GPU-accelerated strategies (Fig. 10's speedup-vs-CPU set).
    pub fn gpu_strategies() -> [Strategy; 3] {
        [Strategy::Hdn, Strategy::Gds, Strategy::GpuTn]
    }

    /// Paper name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Cpu => "CPU",
            Strategy::Hdn => "HDN",
            Strategy::Gds => "GDS",
            Strategy::GpuTn => "GPU-TN",
        }
    }

    /// Does this strategy run workload compute on the GPU?
    pub fn uses_gpu(self) -> bool {
        !matches!(self, Strategy::Cpu)
    }

    /// Can this strategy initiate messages from inside a kernel? (Table 1's
    /// "Intra-Kernel" column.)
    pub fn intra_kernel(self) -> bool {
        matches!(self, Strategy::GpuTn)
    }

    /// Is the network trigger issued by the GPU? (Table 1's "GPU Triggered"
    /// column.)
    pub fn gpu_triggered(self) -> bool {
        matches!(self, Strategy::Gds | Strategy::GpuTn)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cpu" => Ok(Strategy::Cpu),
            "hdn" => Ok(Strategy::Hdn),
            "gds" => Ok(Strategy::Gds),
            "gpu-tn" | "gputn" | "gpu_tn" => Ok(Strategy::GpuTn),
            other => Err(format!("unknown strategy '{other}' (cpu|hdn|gds|gpu-tn)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_columns() {
        // Table 1 rows for the strategies we implement.
        assert!(!Strategy::Hdn.gpu_triggered() && !Strategy::Hdn.intra_kernel());
        assert!(Strategy::Gds.gpu_triggered() && !Strategy::Gds.intra_kernel());
        assert!(Strategy::GpuTn.gpu_triggered() && Strategy::GpuTn.intra_kernel());
        assert!(!Strategy::Cpu.uses_gpu());
        assert!(Strategy::Hdn.uses_gpu());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in Strategy::all() {
            let parsed: Strategy = s.name().parse().unwrap();
            assert_eq!(parsed, s);
        }
        assert!("warp-drive".parse::<Strategy>().is_err());
    }

    #[test]
    fn ordering_matches_paper() {
        assert_eq!(
            Strategy::all().map(|s| s.name()),
            ["CPU", "HDN", "GDS", "GPU-TN"]
        );
        assert_eq!(Strategy::gpu_strategies().len(), 3);
    }
}
