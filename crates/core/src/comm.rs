//! The strategy-driver layer: every §5.1 communication idiom in one place.
//!
//! Each evaluated strategy (CPU, HDN, GDS, GPU-TN) maps a workload's
//! communication phases onto the simulated hardware in its own way:
//!
//! - **CPU / HDN** own a two-sided [`MpiWorld`] lane — matched eager /
//!   rendezvous send-recv pairs built at [`CommDriver::setup`] time.
//! - **GDS** pre-registers one-sided puts and arms a *kernel-boundary
//!   doorbell* ([`GdsHook`]) per dependent kernel: the GPU front-end
//!   writes the trigger tag when the named kernel completes.
//! - **GPU-TN** pre-registers [`NicCommand::TriggeredPut`] entries that
//!   the kernel itself fires mid-execution through a system-scope release
//!   fence followed by a trigger store (Fig. 7 / §4.2.6) — including the
//!   §3.4 dynamic variant where the kernel also supplies [`DynFields`]
//!   patching the CPU-registered template.
//!
//! Before this module existed those idioms were copy-pasted across every
//! workload's `match strategy` arms. A workload now asks
//! [`driver`] for a boxed [`CommDriver`] and speaks one vocabulary:
//! `setup` → `send`/`recv` (two-sided lane) or `post`/`register` +
//! `on_kernel_done` (one-sided lanes) → `install` on the built cluster.
//! Kernel-side GPU-TN fragments (fence + trigger stores) come from the
//! [`GpuTnDriver`] helpers so the release-then-trigger ordering contract
//! is written down exactly once.

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::kernel_api::MessagePlan;
use crate::strategy::Strategy;
use gtn_gpu::kernel::ProgramBuilder;
use gtn_host::config::HostConfig;
use gtn_host::mpi::MpiWorld;
use gtn_host::HostProgram;
use gtn_mem::scope::{MemOrdering, MemScope};
use gtn_mem::{Addr, MemPool, NodeId};
use gtn_nic::dynamic::DynFields;
use gtn_nic::nic::NicCommand;
use gtn_nic::op::NetOp;
use gtn_nic::Tag;

/// A GDS kernel-boundary doorbell registration: when the kernel labelled
/// `kernel` completes on `node`, the GPU front-end writes `tag` to the
/// NIC's trigger address, firing whatever was registered under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GdsHook {
    /// Node whose GPU front-end rings the doorbell.
    pub node: u32,
    /// Label of the kernel launch whose completion fires the doorbell.
    pub kernel: String,
    /// Trigger tag the doorbell writes.
    pub tag: Tag,
}

/// One networking strategy's communication idioms behind a uniform
/// vocabulary.
///
/// Lifecycle: construct (via [`driver`]), [`setup`](CommDriver::setup)
/// once against the config and memory pool, emit per-phase operations
/// into each node's [`HostProgram`], then
/// [`install`](CommDriver::install) on the built [`Cluster`] before
/// running it.
///
/// Two-sided drivers (CPU, HDN) implement [`send`](CommDriver::send) /
/// [`recv`](CommDriver::recv); one-sided drivers (GDS, GPU-TN) implement
/// [`post`](CommDriver::post) / [`register`](CommDriver::register) and
/// panic on the matched pair — a workload mixing vocabularies has a bug,
/// and the panic says which.
pub trait CommDriver {
    /// The strategy this driver realizes.
    fn strategy(&self) -> Strategy;

    /// One-time world setup. Two-sided drivers build their [`MpiWorld`]
    /// here (allocating per-channel eager buffers from `mem`); one-sided
    /// drivers need nothing and use the default no-op.
    fn setup(&mut self, config: &ClusterConfig, mem: &mut MemPool, max_msg_bytes: u64) {
        let _ = (config, mem, max_msg_bytes);
    }

    /// Like [`setup`](CommDriver::setup), but for workloads that know
    /// their communication graph up front: only the given directed
    /// `(src, dst)` pairs get eager channels. At 512 nodes a ring
    /// Allreduce talks to 2 peers per rank, not 511, so the dense
    /// `O(P²)` mailbox mesh would dwarf the payload memory. One-sided
    /// drivers ignore the hint; the default delegates to the dense
    /// [`setup`](CommDriver::setup) so sparse-aware callers stay correct
    /// on every driver.
    fn setup_pairs(
        &mut self,
        config: &ClusterConfig,
        mem: &mut MemPool,
        max_msg_bytes: u64,
        pairs: &[(u32, u32)],
    ) {
        let _ = pairs;
        self.setup(config, mem, max_msg_bytes);
    }

    /// Emit a matched two-sided send of `len` bytes from `src` on node
    /// `from` toward `to` into `prog`.
    ///
    /// # Panics
    /// Panics on one-sided drivers (GDS, GPU-TN).
    fn send(&mut self, prog: &mut HostProgram, from: NodeId, to: NodeId, src: Addr, len: u64) {
        let _ = (prog, from, to, src, len);
        panic!(
            "{} is one-sided: use post/register, not matched send/recv",
            self.strategy()
        );
    }

    /// Emit the matching two-sided receive of `len` bytes from `from`
    /// into `dst` on node `to`.
    ///
    /// # Panics
    /// Panics on one-sided drivers (GDS, GPU-TN).
    fn recv(&mut self, prog: &mut HostProgram, from: NodeId, to: NodeId, dst: Addr, len: u64) {
        let _ = (prog, from, to, dst, len);
        panic!(
            "{} is one-sided: use post/register, not matched send/recv",
            self.strategy()
        );
    }

    /// Emit an immediate one-sided put: the NIC fires `op` as soon as the
    /// host program reaches the post.
    fn post(&mut self, prog: &mut HostProgram, op: NetOp) {
        prog.nic_post(NicCommand::Put(op));
    }

    /// Register `op` under `tag` to fire once the NIC's trigger counter
    /// for `tag` reaches `threshold`. Who writes the tag differs by
    /// strategy: GDS arms a kernel-boundary doorbell
    /// ([`on_kernel_done`](CommDriver::on_kernel_done)); GPU-TN lets the
    /// kernel trigger mid-execution ([`GpuTnDriver::release_triggers`]).
    fn register(&mut self, prog: &mut HostProgram, tag: Tag, threshold: u64, op: NetOp) {
        prog.nic_post(NicCommand::TriggeredPut { tag, threshold, op });
    }

    /// Arm a kernel-boundary doorbell: when the kernel labelled `label`
    /// completes on `node`, write `tag` to the trigger address.
    ///
    /// # Panics
    /// Panics on every driver but GDS — the doorbell *is* the GDS
    /// mechanism (§5.1); the other strategies have no kernel-boundary
    /// trigger path.
    fn on_kernel_done(&mut self, node: u32, label: &str, tag: Tag) {
        let _ = (node, label, tag);
        panic!(
            "{} has no kernel-boundary doorbell (GDS only)",
            self.strategy()
        );
    }

    /// Apply accumulated cluster-side registrations (GDS doorbell hooks)
    /// to the built cluster. Call after [`Cluster::new`], before
    /// [`Cluster::run`]. Default: nothing to install.
    fn install(&mut self, cluster: &mut Cluster) {
        let _ = cluster;
    }
}

/// Shared two-sided lane: an [`MpiWorld`] plus the host config its
/// receive-side copies are costed against.
#[derive(Debug, Default)]
struct MpiLane {
    world: Option<MpiWorld>,
    host: Option<HostConfig>,
}

impl MpiLane {
    fn setup(&mut self, config: &ClusterConfig, mem: &mut MemPool, max_msg_bytes: u64) {
        self.world = Some(MpiWorld::new(mem, config.n_nodes, max_msg_bytes));
        self.host = Some(config.host.clone());
    }

    fn setup_pairs(
        &mut self,
        config: &ClusterConfig,
        mem: &mut MemPool,
        max_msg_bytes: u64,
        pairs: &[(u32, u32)],
    ) {
        self.world = Some(MpiWorld::for_pairs(mem, pairs, max_msg_bytes));
        self.host = Some(config.host.clone());
    }

    fn world(&mut self) -> &mut MpiWorld {
        self.world
            .as_mut()
            .expect("CommDriver::setup must run before send/recv")
    }

    fn send(&mut self, prog: &mut HostProgram, from: NodeId, to: NodeId, src: Addr, len: u64) {
        let ops = self.world().send_ops(from, to, src, len);
        prog.extend(ops);
    }

    fn recv(&mut self, prog: &mut HostProgram, from: NodeId, to: NodeId, dst: Addr, len: u64) {
        let host = self
            .host
            .clone()
            .expect("CommDriver::setup must run before send/recv");
        let ops = self.world().recv_ops(&host, from, to, dst, len);
        prog.extend(ops);
    }
}

/// The pure-CPU baseline (§5.1): full network stack on the host, matched
/// MPI semantics, no GPU anywhere in the communication path.
#[derive(Debug, Default)]
pub struct CpuMpiDriver {
    lane: MpiLane,
}

impl CpuMpiDriver {
    /// A driver with no world yet; call [`CommDriver::setup`] before use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CommDriver for CpuMpiDriver {
    fn strategy(&self) -> Strategy {
        Strategy::Cpu
    }

    fn setup(&mut self, config: &ClusterConfig, mem: &mut MemPool, max_msg_bytes: u64) {
        self.lane.setup(config, mem, max_msg_bytes);
    }

    fn setup_pairs(
        &mut self,
        config: &ClusterConfig,
        mem: &mut MemPool,
        max_msg_bytes: u64,
        pairs: &[(u32, u32)],
    ) {
        self.lane.setup_pairs(config, mem, max_msg_bytes, pairs);
    }

    fn send(&mut self, prog: &mut HostProgram, from: NodeId, to: NodeId, src: Addr, len: u64) {
        self.lane.send(prog, from, to, src, len);
    }

    fn recv(&mut self, prog: &mut HostProgram, from: NodeId, to: NodeId, dst: Addr, len: u64) {
        self.lane.recv(prog, from, to, dst, len);
    }
}

/// Host-driven networking (§5.1): the same two-sided MPI lane as the CPU
/// baseline, but compute runs in GPU kernels — so every communication
/// round pays a kernel boundary while the CPU messages in between.
#[derive(Debug, Default)]
pub struct HdnDriver {
    lane: MpiLane,
}

impl HdnDriver {
    /// A driver with no world yet; call [`CommDriver::setup`] before use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CommDriver for HdnDriver {
    fn strategy(&self) -> Strategy {
        Strategy::Hdn
    }

    fn setup(&mut self, config: &ClusterConfig, mem: &mut MemPool, max_msg_bytes: u64) {
        self.lane.setup(config, mem, max_msg_bytes);
    }

    fn setup_pairs(
        &mut self,
        config: &ClusterConfig,
        mem: &mut MemPool,
        max_msg_bytes: u64,
        pairs: &[(u32, u32)],
    ) {
        self.lane.setup_pairs(config, mem, max_msg_bytes, pairs);
    }

    fn send(&mut self, prog: &mut HostProgram, from: NodeId, to: NodeId, src: Addr, len: u64) {
        self.lane.send(prog, from, to, src, len);
    }

    fn recv(&mut self, prog: &mut HostProgram, from: NodeId, to: NodeId, dst: Addr, len: u64) {
        self.lane.recv(prog, from, to, dst, len);
    }
}

/// GPUDirect-Async-style networking (§5.1): the CPU pre-registers puts,
/// and the GPU front-end rings the trigger doorbell at kernel boundaries.
/// Hooks accumulate in the driver ([`CommDriver::on_kernel_done`]) and
/// apply to the cluster in [`CommDriver::install`].
#[derive(Debug, Default)]
pub struct GdsDriver {
    hooks: Vec<GdsHook>,
}

impl GdsDriver {
    /// A driver with no doorbell hooks yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The doorbell hooks armed so far, in registration order.
    pub fn hooks(&self) -> &[GdsHook] {
        &self.hooks
    }
}

impl CommDriver for GdsDriver {
    fn strategy(&self) -> Strategy {
        Strategy::Gds
    }

    fn on_kernel_done(&mut self, node: u32, label: &str, tag: Tag) {
        self.hooks.push(GdsHook {
            node,
            kernel: label.to_owned(),
            tag,
        });
    }

    fn install(&mut self, cluster: &mut Cluster) {
        for h in &self.hooks {
            cluster.gds_doorbell_on_done(h.node, &h.kernel, h.tag);
        }
    }
}

/// GPU triggered networking — the paper's contribution. The CPU
/// pre-registers triggered operations; the *kernel* fires them
/// mid-execution via a system-scope release fence followed by trigger
/// stores (Fig. 7 / §4.2.6). The kernel-side fragments live here as
/// builder helpers so the ordering contract (release *before* trigger)
/// is encoded once.
#[derive(Debug, Default)]
pub struct GpuTnDriver;

impl GpuTnDriver {
    /// A stateless GPU-TN driver.
    pub fn new() -> Self {
        Self
    }

    /// Kernel fragment: system-scope release fence, then one trigger
    /// store for `tag` — "the data is globally visible before the NIC is
    /// told to move it" (§4.2.6).
    pub fn release_trigger(builder: ProgramBuilder, tag: Tag) -> ProgramBuilder {
        Self::release_triggers(builder, &[tag])
    }

    /// Kernel fragment: one release fence covering a batch of trigger
    /// stores (e.g. all four halo directions of a Jacobi iteration).
    pub fn release_triggers(builder: ProgramBuilder, tags: &[Tag]) -> ProgramBuilder {
        let mut b = builder.fence(MemScope::System, MemOrdering::Release);
        for &tag in tags {
            b = b.trigger_store(move |_| tag);
        }
        b
    }

    /// Kernel fragment for the §3.4 dynamic extension: release fence,
    /// then a trigger store that also supplies GPU-computed `fields`
    /// patching the CPU-registered template operation.
    pub fn release_trigger_dyn(
        builder: ProgramBuilder,
        tag: Tag,
        fields: DynFields,
    ) -> ProgramBuilder {
        builder
            .fence(MemScope::System, MemOrdering::Release)
            .trigger_store_dyn(move |_| tag, move |_| fields)
    }

    /// Attach a whole [`MessagePlan`]'s trigger stores (§4.2 messaging
    /// granularities) to a kernel under construction.
    pub fn attach_plan(plan: &MessagePlan, builder: ProgramBuilder) -> ProgramBuilder {
        plan.attach_trigger_ops(builder)
    }
}

impl CommDriver for GpuTnDriver {
    fn strategy(&self) -> Strategy {
        Strategy::GpuTn
    }
}

/// The driver realizing `strategy`.
pub fn driver(strategy: Strategy) -> Box<dyn CommDriver> {
    match strategy {
        Strategy::Cpu => Box::new(CpuMpiDriver::new()),
        Strategy::Hdn => Box::new(HdnDriver::new()),
        Strategy::Gds => Box::new(GdsDriver::new()),
        Strategy::GpuTn => Box::new(GpuTnDriver::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(mem: &mut MemPool) -> NetOp {
        NetOp::Put {
            src: Addr::base(NodeId(0), mem.alloc(NodeId(0), 8, "comm.src")),
            len: 8,
            target: NodeId(1),
            dst: Addr::base(NodeId(1), mem.alloc(NodeId(1), 8, "comm.dst")),
            notify: None,
            completion: None,
        }
    }

    #[test]
    fn factory_covers_every_strategy() {
        for s in Strategy::all() {
            assert_eq!(driver(s).strategy(), s);
        }
    }

    #[test]
    fn one_sided_drivers_emit_posts_and_registrations() {
        let mut mem = MemPool::new(2);
        for s in [Strategy::Gds, Strategy::GpuTn] {
            let mut d = driver(s);
            let mut prog = HostProgram::new();
            d.post(&mut prog, put(&mut mem));
            d.register(&mut prog, Tag(7), 1, put(&mut mem));
            assert_eq!(prog.len(), 2, "{s}");
        }
    }

    #[test]
    fn two_sided_drivers_build_an_mpi_lane_on_setup() {
        let config = ClusterConfig::table2(2);
        for s in [Strategy::Cpu, Strategy::Hdn] {
            let mut mem = MemPool::new(2);
            let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 64, "t.src"));
            let dst = Addr::base(NodeId(1), mem.alloc(NodeId(1), 64, "t.dst"));
            let mut d = driver(s);
            d.setup(&config, &mut mem, 64);
            let (mut p0, mut p1) = (HostProgram::new(), HostProgram::new());
            d.send(&mut p0, NodeId(0), NodeId(1), src, 64);
            d.recv(&mut p1, NodeId(0), NodeId(1), dst, 64);
            assert!(!p0.is_empty() && !p1.is_empty(), "{s}");
        }
    }

    #[test]
    fn sparse_setup_builds_channels_for_named_pairs_only() {
        let config = ClusterConfig::table2(4);
        for s in [Strategy::Cpu, Strategy::Hdn] {
            let mut mem = MemPool::new(4);
            let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 64, "t.src"));
            let mut d = driver(s);
            d.setup_pairs(&config, &mut mem, 64, &[(0, 1), (1, 0)]);
            let mut p0 = HostProgram::new();
            d.send(&mut p0, NodeId(0), NodeId(1), src, 64);
            assert!(!p0.is_empty(), "{s}");
        }
    }

    #[test]
    #[should_panic(expected = "no channel n0->n2")]
    fn sparse_setup_panics_on_unnamed_pair() {
        let config = ClusterConfig::table2(4);
        let mut mem = MemPool::new(4);
        let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 64, "t.src"));
        let mut d = driver(Strategy::Cpu);
        d.setup_pairs(&config, &mut mem, 64, &[(0, 1)]);
        let mut p0 = HostProgram::new();
        d.send(&mut p0, NodeId(0), NodeId(2), src, 64);
    }

    #[test]
    fn one_sided_drivers_accept_the_pair_hint() {
        let config = ClusterConfig::table2(2);
        for s in [Strategy::Gds, Strategy::GpuTn] {
            let mut mem = MemPool::new(2);
            // Default delegates to the (no-op) dense setup: must not panic.
            driver(s).setup_pairs(&config, &mut mem, 64, &[(0, 1)]);
        }
    }

    #[test]
    #[should_panic(expected = "one-sided")]
    fn send_on_a_one_sided_driver_panics() {
        let mut mem = MemPool::new(2);
        let src = Addr::base(NodeId(0), mem.alloc(NodeId(0), 8, "comm.src"));
        let mut d = driver(Strategy::GpuTn);
        let mut prog = HostProgram::new();
        d.send(&mut prog, NodeId(0), NodeId(1), src, 8);
    }

    #[test]
    #[should_panic(expected = "GDS only")]
    fn doorbell_on_a_non_gds_driver_panics() {
        driver(Strategy::Hdn).on_kernel_done(0, "k", Tag(1));
    }

    #[test]
    fn gds_hooks_accumulate_in_registration_order() {
        let mut d = GdsDriver::new();
        d.on_kernel_done(0, "k0", Tag(1));
        d.on_kernel_done(1, "k0", Tag(2));
        assert_eq!(
            d.hooks(),
            &[
                GdsHook {
                    node: 0,
                    kernel: "k0".into(),
                    tag: Tag(1)
                },
                GdsHook {
                    node: 1,
                    kernel: "k0".into(),
                    tag: Tag(2)
                },
            ]
        );
    }

    #[test]
    fn release_trigger_fragments_build_valid_kernels() {
        let k = GpuTnDriver::release_triggers(ProgramBuilder::new(), &[Tag(1), Tag(2)])
            .build()
            .expect("valid kernel");
        assert!(k.len() >= 3, "fence + two trigger stores");
        let dynk = GpuTnDriver::release_trigger_dyn(ProgramBuilder::new(), Tag(3), DynFields::NONE)
            .build()
            .expect("valid kernel");
        assert_eq!(dynk.len(), 2, "fence + dynamic trigger store");
    }
}
