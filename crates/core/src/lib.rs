//! # gtn-core — the GPU-TN programming model and cluster
//!
//! The paper's contribution, assembled: this crate wires the substrates
//! (memory, fabric, NIC, GPU, host CPU) into simulated cluster nodes and
//! exposes the GPU-TN programming model on top.
//!
//! - [`config`] — the Table 2 cluster configuration in one place.
//! - [`cluster`] — the world: per-node CPU + GPU + NIC over a shared
//!   coherent memory pool and a star fabric, with a single deterministic
//!   event loop and an experiment-readable activity log.
//! - [`comm`] — the strategy-driver layer: one [`comm::CommDriver`] per
//!   §5.1 strategy encapsulating its communication idioms (MPI lane,
//!   doorbell hooks, triggered-put registration) so workloads share them.
//! - [`host_api`] — the Fig. 6 host-side API: `rdma_init`, `trig_put`,
//!   `launch_kern`, mirrored onto host programs.
//! - [`kernel_api`] — the §4.2 kernel-side messaging granularities
//!   (work-item / work-group / kernel / mixed) as planners that pair GPU
//!   trigger stores with matching NIC registrations.
//! - [`observe`] — the namespaced stats registry
//!   ([`observe::ClusterStats`]) that snapshots every component's counters
//!   and stage-latency histograms for reports.
//! - [`scenario`] — the unified scenario vocabulary
//!   ([`scenario::ScenarioParams`] / [`scenario::ScenarioResult`]) the
//!   workload harness drives every evaluation workload through.
//! - [`stall`] — structured diagnostics for runs that wedge: which nodes
//!   are stuck, on what, and what their NICs were still retrying.
//! - [`tenancy`] — multi-tenant serving vocabulary: tenant→trigger-list
//!   partition mapping encoded in tag low bits, and bounded-queue
//!   admission control with conservation-checked shed counters.
//! - [`strategy`] — the four evaluated configurations (§5.1): CPU, HDN,
//!   GDS, GPU-TN, plus the GDS kernel-boundary doorbell mechanism.
//! - [`timeline`] — turns the cluster log into Fig. 3/Fig. 8 style latency
//!   decompositions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod comm;
pub mod config;
pub mod host_api;
pub mod kernel_api;
pub mod membership;
pub mod observe;
pub mod scenario;
pub mod stall;
pub mod strategy;
pub mod tenancy;
pub mod timeline;

pub use cluster::{Cluster, ClusterResult, LogKind, LogRecord};
pub use config::ClusterConfig;
pub use membership::{DetectorKind, FailureConfig, Liveness, MembershipView, RecoveryPolicy};
pub use observe::ClusterStats;
pub use stall::{BlockedOn, NodeStall, StallReason, StallReport};
pub use strategy::Strategy;
pub use tenancy::{Admission, TenantMap};
