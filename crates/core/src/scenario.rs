//! The shared scenario vocabulary: one parameter struct and one result
//! shape for every evaluation workload, living beside the strategy
//! drivers ([`crate::comm`]) they parameterize.
//!
//! The paper's figures are *controlled comparisons* — the same workload
//! under the four §5.1 strategies — so the knobs (strategy, node
//! geometry, size, iterations, seed, config overrides) and the reported
//! quantities (total / per-iteration time, stage decomposition, stats,
//! reliability counters) are the same across workloads. The `Workload`
//! trait and `Harness` in `gtn-workloads` drive these types generically.

use crate::cluster::{Cluster, ClusterResult};
use crate::config::ClusterConfig;
use crate::membership::{FailureConfig, RecoveryPolicy};
use crate::timeline::stage_breakdown;
use crate::{ClusterStats, Strategy};
use gtn_fabric::{CrashComponent, DegradeSpec};
use gtn_sim::time::{SimDuration, SimTime};

/// Declarative cluster-config overrides a scenario carries with it, so
/// ablations (seeded loss, reliability) ride the same parameter struct as
/// everything else instead of bespoke closure plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConfigPatch {
    /// Seeded packet loss `(fault_seed, rate)`; a rate of `0.0` is the
    /// lossless baseline (no fault injection, reliability layer off).
    pub loss: Option<(u64, f64)>,
    /// Shrunk NIC resource limits, to force the graceful-degradation
    /// machinery (trigger spill, bounded CQ, flow-control credits) under
    /// workloads that would never pressure the defaults.
    pub pressure: Option<ResourceLimits>,
    /// A permanent crash-stop injection: which component dies, and when.
    /// Implies the reliability layer (so pending sends toward the corpse
    /// end in structured delivery failures, not silence).
    pub crash: Option<CrashCell>,
    /// Arm the heartbeat/lease failure detector with this recovery policy
    /// (see [`crate::membership::FailureConfig::detection`] for the
    /// cadence). `None` leaves detection off: a crash then surfaces only
    /// through the stall watchdog.
    pub detect: Option<RecoveryPolicy>,
    /// Pin the engine's calendar shard count (see
    /// [`ClusterConfig::effective_sim_shards`]). `None` keeps the config
    /// default (the `GTN_SIM_SHARDS` knob / sequential path). Sharding
    /// never changes results — this exists so tests can run the same
    /// scenario at several shard counts and assert bit-identity.
    pub sim_shards: Option<u32>,
    /// Replace the physical interconnect shape (`None` keeps the
    /// workload's default, the paper's star). The fabric expands the shape
    /// into an explicit switch/link graph, so the same workload sweeps
    /// across star / full-mesh / fat-tree / dragonfly fabrics.
    pub topo: Option<gtn_fabric::Topology>,
    /// A gray-failure injection: one component degrades (latency, jitter,
    /// loss bursts, flapping) without dying. Layers onto whatever fault
    /// plan is in place; specs that can *drop* traffic (loss or flap)
    /// imply the reliability layer, latency-only ones leave it alone.
    pub degrade: Option<DegradeSpec>,
    /// Replace the failure-detector tuning wholesale (heartbeat cadence,
    /// lease thresholds, detector kind, φ thresholds). Composes with
    /// `detect`: this sets the cadence/detector, `detect` still picks the
    /// recovery policy on top of it.
    pub failure: Option<crate::membership::FailureConfig>,
    /// Arm route-around failover with an explicit switch-local detection
    /// delay, ns. `None` + `detect == Some(RouteAround)` uses
    /// [`gtn_fabric::DEFAULT_REROUTE_DELAY_NS`].
    pub reroute_delay_ns: Option<u64>,
}

/// One crash-stop injection, `Copy` so it rides [`ConfigPatch`] through
/// the sweep grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashCell {
    /// What dies (node, NIC, or undirected link).
    pub component: CrashComponent,
    /// When it dies, ns of sim time.
    pub at_ns: u64,
}

/// NIC resource bounds a scenario can shrink to provoke exhaustion.
/// Every field is optional; `None` leaves the workload's default alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceLimits {
    /// Use an associative trigger CAM of this many ways (overflow beyond
    /// it spills to the host-memory table).
    pub trigger_ways: Option<u32>,
    /// Cap the host-memory trigger overflow table (entries beyond CAM +
    /// overflow are rejected).
    pub trigger_overflow: Option<usize>,
    /// Bound the completion queue to this many entries, with a modeled
    /// host consumer draining it (backpressure parks commits when full).
    pub cq_capacity: Option<u64>,
    /// Interval of the modeled CQ consumer, ns per entry retired. Larger
    /// values model a slower host poller; `0` models one that never polls
    /// (runs then stall with a `ResourceStarvation` diagnosis).
    pub cq_drain_ns: Option<u64>,
    /// ARQ reorder-buffer window / flow-control credit pool per peer.
    /// Implies the reliability layer is on.
    pub arq_window: Option<u64>,
    /// Slice the trigger CAM into this many per-tenant partitions
    /// (multi-tenant serving; tags map to partition `tag % partitions`).
    pub trigger_partitions: Option<u32>,
    /// Per-partition admission depth: active trigger entries past it are
    /// shed (counted, never a panic). Requires `trigger_partitions`.
    pub partition_depth: Option<u64>,
}

impl ResourceLimits {
    /// The canonical "tiny everything" pressure cell used by tests: a
    /// `ways`-way trigger CAM and a `cq`-entry completion queue.
    pub fn tiny(ways: u32, cq: u64) -> Self {
        ResourceLimits {
            trigger_ways: Some(ways),
            trigger_overflow: None,
            cq_capacity: Some(cq),
            cq_drain_ns: None,
            arq_window: None,
            trigger_partitions: None,
            partition_depth: None,
        }
    }

    /// Partition the trigger CAM into `partitions` tenant shares with an
    /// optional per-partition admission `depth` (serving scenarios).
    pub fn partitioned(partitions: u32, depth: Option<u64>) -> Self {
        ResourceLimits {
            trigger_partitions: Some(partitions),
            partition_depth: depth,
            ..ResourceLimits::default()
        }
    }
}

impl ConfigPatch {
    /// No overrides: the workload's default (lossless) configuration.
    pub const NONE: ConfigPatch = ConfigPatch {
        loss: None,
        pressure: None,
        crash: None,
        detect: None,
        sim_shards: None,
        topo: None,
        degrade: None,
        failure: None,
        reroute_delay_ns: None,
    };

    /// Seeded packet loss at `rate`, with the NIC reliability layer (ARQ
    /// retry/timeout/backoff) enabled to absorb the drops.
    pub fn loss(seed: u64, rate: f64) -> Self {
        ConfigPatch {
            loss: Some((seed, rate)),
            ..ConfigPatch::NONE
        }
    }

    /// Shrunk NIC resource limits (see [`ResourceLimits`]).
    pub fn pressure(limits: ResourceLimits) -> Self {
        ConfigPatch {
            pressure: Some(limits),
            ..ConfigPatch::NONE
        }
    }

    /// Combine this patch with shrunk resource limits.
    pub fn with_pressure(mut self, limits: ResourceLimits) -> Self {
        self.pressure = Some(limits);
        self
    }

    /// Crash the whole node `node` (CPU, GPU, NIC) at `at_ns`.
    pub fn crash_node(node: u32, at_ns: u64) -> Self {
        ConfigPatch::NONE.with_crash(CrashComponent::Node(node), at_ns)
    }

    /// Crash only node `node`'s NIC at `at_ns` (compute survives).
    pub fn crash_nic(node: u32, at_ns: u64) -> Self {
        ConfigPatch::NONE.with_crash(CrashComponent::Nic(node), at_ns)
    }

    /// Sever the undirected link between `a` and `b` at `at_ns`.
    pub fn crash_link(a: u32, b: u32, at_ns: u64) -> Self {
        ConfigPatch::NONE.with_crash(CrashComponent::Link { a, b }, at_ns)
    }

    /// Sever the undirected topology-graph edge between vertices `a` and
    /// `b` at `at_ns` (hosts number below switches; only pairs whose
    /// routes cross the edge lose connectivity).
    pub fn crash_edge(a: u32, b: u32, at_ns: u64) -> Self {
        ConfigPatch::NONE.with_crash(CrashComponent::Edge { a, b }, at_ns)
    }

    /// Combine this patch with a replaced interconnect shape.
    pub fn with_topology(mut self, topo: gtn_fabric::Topology) -> Self {
        self.topo = Some(topo);
        self
    }

    /// Combine this patch with a crash-stop injection.
    pub fn with_crash(mut self, component: CrashComponent, at_ns: u64) -> Self {
        self.crash = Some(CrashCell { component, at_ns });
        self
    }

    /// Combine this patch with failure detection under `policy`.
    pub fn with_detection(mut self, policy: RecoveryPolicy) -> Self {
        self.detect = Some(policy);
        self
    }

    /// Combine this patch with a gray-failure injection.
    pub fn with_degrade(mut self, spec: DegradeSpec) -> Self {
        self.degrade = Some(spec);
        self
    }

    /// Combine this patch with replaced failure-detector tuning (cadence,
    /// lease thresholds, detector kind).
    pub fn with_failure(mut self, failure: crate::membership::FailureConfig) -> Self {
        self.failure = Some(failure);
        self
    }

    /// Combine this patch with an explicit route-around detection delay.
    pub fn with_reroute_delay(mut self, delay_ns: u64) -> Self {
        self.reroute_delay_ns = Some(delay_ns);
        self
    }

    /// Combine this patch with a pinned calendar shard count.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.sim_shards = Some(shards);
        self
    }

    /// Apply the overrides to a cluster config (after workload defaults).
    pub fn apply(&self, config: &mut ClusterConfig) {
        if let Some(topo) = self.topo {
            config.fabric.topology = topo;
        }
        if let Some((seed, rate)) = self.loss {
            if rate > 0.0 {
                config.fabric.faults = gtn_fabric::FaultConfig::loss(seed, rate);
                config.nic.reliability = gtn_nic::reliability::ReliabilityConfig::on();
            }
        }
        if let Some(cell) = self.crash {
            // Layer the crash onto whatever fault plan is already in place
            // (seeded loss keeps its seed; crash checks draw no randomness).
            config.fabric.faults.crashes.push(gtn_fabric::CrashSpec {
                component: cell.component,
                at_ns: cell.at_ns,
            });
            config.nic.reliability = gtn_nic::reliability::ReliabilityConfig::on();
        }
        if let Some(spec) = self.degrade {
            // Layer the gray failure onto the existing plan (loss keeps its
            // seed; each degrade owns a forked stream, so healthy-path
            // draws are untouched). Only specs that can drop traffic need
            // the ARQ layer — a latency-only straggler must not change the
            // wire protocol of the run it rides along with.
            config.fabric.faults.degrades.push(spec);
            if spec.loss > 0.0 || spec.flap_period_ns > 0 {
                config.nic.reliability = gtn_nic::reliability::ReliabilityConfig::on();
            }
        }
        if let Some(failure) = self.failure {
            config.failure = failure;
        }
        if let Some(policy) = self.detect {
            if self.failure.is_some() {
                // Explicit detector tuning keeps its cadence/thresholds;
                // `detect` only picks the recovery policy on top of it.
                config.failure.recovery = policy;
            } else {
                config.failure = FailureConfig::with_recovery(policy);
            }
            if policy == RecoveryPolicy::RouteAround && config.fabric.reroute_delay_ns.is_none() {
                config.fabric.reroute_delay_ns = Some(gtn_fabric::DEFAULT_REROUTE_DELAY_NS);
            }
        }
        if let Some(delay) = self.reroute_delay_ns {
            config.fabric.reroute_delay_ns = Some(delay);
        }
        if let Some(shards) = self.sim_shards {
            config.sim_shards = shards;
        }
        if let Some(limits) = self.pressure {
            if let Some(ways) = limits.trigger_ways {
                config.nic.lookup = gtn_nic::lookup::LookupKind::Associative { ways };
            }
            if let Some(cap) = limits.trigger_overflow {
                config.nic.trigger_overflow_capacity = cap;
            }
            if let Some(depth) = limits.cq_capacity {
                config.nic.cq_capacity = Some(depth);
            }
            if let Some(drain) = limits.cq_drain_ns {
                config.nic.cq_drain_ns = drain;
            }
            if let Some(window) = limits.arq_window {
                config.nic.reliability = gtn_nic::reliability::ReliabilityConfig::bounded(window);
            }
            if let Some(partitions) = limits.trigger_partitions {
                config.nic.trigger_partitions = gtn_nic::TriggerPartitions {
                    partitions,
                    depth: limits.partition_depth,
                };
            }
        }
    }
}

/// Unified scenario parameters. Each workload reads the fields it needs:
/// Jacobi uses `rows`×`cols` nodes with a `size`×`size` local grid;
/// Allreduce uses `node_count()` ranks reducing `size` elements; pingpong
/// is fixed two-node; the launch study maps `variant` to a scheduler
/// profile and `size` to the queued batch.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// Networking strategy under test.
    pub strategy: Strategy,
    /// Node-grid rows (1 for non-grid workloads).
    pub rows: u32,
    /// Node-grid columns (the node count for non-grid workloads).
    pub cols: u32,
    /// Payload / grid size in workload units (elements, local edge,
    /// batch size…).
    pub size: u64,
    /// Iterations (sweeps, rounds) the workload should report per-`iter`
    /// times over.
    pub iters: u32,
    /// Workload-specific variant selector (e.g. scheduler profile index).
    pub variant: u32,
    /// Deterministic input seed.
    pub seed: u64,
    /// Cluster-config overrides.
    pub patch: ConfigPatch,
}

impl ScenarioParams {
    /// A two-node scenario of `strategy` with every other field at its
    /// neutral default; chain the builder methods to specialize.
    pub fn new(strategy: Strategy) -> Self {
        ScenarioParams {
            strategy,
            rows: 1,
            cols: 2,
            size: 0,
            iters: 1,
            variant: 0,
            seed: 0,
            patch: ConfigPatch::NONE,
        }
    }

    /// Use `nodes` ranks in a flat (1×`nodes`) arrangement.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.rows = 1;
        self.cols = nodes;
        self
    }

    /// Use an `rows`×`cols` node grid.
    pub fn grid(mut self, rows: u32, cols: u32) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Set the workload size.
    pub fn size(mut self, size: u64) -> Self {
        self.size = size;
        self
    }

    /// Set the iteration count.
    pub fn iters(mut self, iters: u32) -> Self {
        self.iters = iters;
        self
    }

    /// Set the variant selector.
    pub fn variant(mut self, variant: u32) -> Self {
        self.variant = variant;
        self
    }

    /// Set the input seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach config overrides.
    pub fn patch(mut self, patch: ConfigPatch) -> Self {
        self.patch = patch;
        self
    }

    /// Total participating nodes.
    pub fn node_count(&self) -> u32 {
        self.rows * self.cols
    }
}

/// What every workload reports, regardless of strategy: the timing
/// quantities the figures plot, the stage decomposition (two-node logged
/// runs only), and the stats/reliability counters the reports quote.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Workload name.
    pub workload: &'static str,
    /// Strategy echoed.
    pub strategy: Strategy,
    /// Node count echoed.
    pub nodes: u32,
    /// Workload size echoed.
    pub size: u64,
    /// Iterations echoed.
    pub iters: u32,
    /// The workload's headline completion time (each workload documents
    /// which event this is — e.g. pingpong reports target-side delivery,
    /// the collectives report the slowest node's finish).
    pub total: SimTime,
    /// `total` divided by `iters` (the Fig. 9 quantity).
    pub per_iter: SimDuration,
    /// Fig. 8 stage decomposition from the activity log; empty when the
    /// run disabled event logging or has more than two nodes.
    pub stages: Vec<(&'static str, SimDuration)>,
    /// Every component's stats, namespaced (`node{N}.nic` etc.).
    pub stats: ClusterStats,
    /// Total retransmissions across all NICs (zero unless the run enabled
    /// the reliability layer and the fabric dropped something).
    pub retransmits: u64,
    /// Messages abandoned after retry exhaustion, across all NICs. A
    /// completed run should always report zero.
    pub delivery_failures: u64,
}

impl ScenarioResult {
    /// Snapshot a finished cluster into the unified shape. `total` is the
    /// makespan; workloads reporting a different headline event overwrite
    /// [`total`](ScenarioResult::total) / [`per_iter`](ScenarioResult::per_iter)
    /// via [`set_total`](ScenarioResult::set_total).
    pub fn collect(
        workload: &'static str,
        params: &ScenarioParams,
        cluster: &Cluster,
        result: &ClusterResult,
    ) -> Self {
        let nodes = params.node_count();
        let stats = cluster.collect_stats();
        let retransmits = stats.counter_across("nic", "retransmits");
        let delivery_failures = (0..nodes)
            .map(|nd| cluster.nic(nd).delivery_failures().len() as u64)
            .sum();
        let stages = if cluster.config().log_events && nodes == 2 {
            stage_breakdown(cluster.log(), 0, 1)
        } else {
            Vec::new()
        };
        let mut out = ScenarioResult {
            workload,
            strategy: params.strategy,
            nodes,
            size: params.size,
            iters: params.iters,
            total: SimTime::ZERO,
            per_iter: SimDuration::ZERO,
            stages,
            stats,
            retransmits,
            delivery_failures,
        };
        out.set_total(result.makespan);
        out
    }

    /// Set the headline completion time, recomputing `per_iter`.
    pub fn set_total(&mut self, total: SimTime) {
        self.total = total;
        self.per_iter = SimDuration::from_ps(total.as_ps() / self.iters.max(1) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_params_builder_composes() {
        let p = ScenarioParams::new(Strategy::GpuTn)
            .grid(2, 3)
            .size(64)
            .iters(4)
            .seed(7)
            .patch(ConfigPatch::loss(2, 0.01));
        assert_eq!(p.node_count(), 6);
        assert_eq!((p.size, p.iters, p.seed), (64, 4, 7));
        assert_eq!(p.patch.loss, Some((2, 0.01)));
        assert_eq!(ScenarioParams::new(Strategy::Cpu).nodes(5).node_count(), 5);
    }

    #[test]
    fn pressure_patch_shrinks_the_nic_resources() {
        let mut config = ClusterConfig::table2(2);
        let limits = ResourceLimits {
            trigger_ways: Some(4),
            trigger_overflow: Some(32),
            cq_capacity: Some(8),
            cq_drain_ns: Some(1_000),
            arq_window: Some(2),
            trigger_partitions: Some(2),
            partition_depth: Some(4),
        };
        ConfigPatch::loss(9, 0.1)
            .with_pressure(limits)
            .apply(&mut config);
        assert_eq!(
            config.nic.lookup,
            gtn_nic::lookup::LookupKind::Associative { ways: 4 }
        );
        assert_eq!(config.nic.trigger_overflow_capacity, 32);
        assert_eq!(config.nic.cq_capacity, Some(8));
        assert_eq!(config.nic.cq_drain_ns, 1_000);
        assert!(config.nic.reliability.enabled);
        assert_eq!(config.nic.reliability.window, 2);
        assert_eq!(
            config.nic.trigger_partitions,
            gtn_nic::TriggerPartitions {
                partitions: 2,
                depth: Some(4),
            }
        );
        // tiny() fills only the CAM and CQ bounds.
        let t = ResourceLimits::tiny(2, 4);
        assert_eq!(t.trigger_ways, Some(2));
        assert_eq!(t.cq_capacity, Some(4));
        assert_eq!(t.arq_window, None);
        assert_eq!(t.trigger_partitions, None);
        // partitioned() fills only the tenancy bounds.
        let p = ResourceLimits::partitioned(8, Some(16));
        assert_eq!(p.trigger_partitions, Some(8));
        assert_eq!(p.partition_depth, Some(16));
        assert_eq!(p.trigger_ways, None);
    }

    #[test]
    fn crash_patch_layers_onto_loss_and_arms_detection() {
        let mut config = ClusterConfig::table2(4);
        ConfigPatch::loss(7, 0.05)
            .with_crash(CrashComponent::Nic(2), 40_000)
            .with_detection(RecoveryPolicy::CheckpointRestart)
            .apply(&mut config);
        // Loss keeps its seed; the crash rides the same plan.
        assert!(config.fabric.faults.packet_loss > 0.0);
        assert_eq!(config.fabric.faults.crashes.len(), 1);
        assert_eq!(config.fabric.faults.nic_down_at(2), Some(40_000));
        assert_eq!(config.fabric.faults.node_down_at(2), None);
        assert!(config.nic.reliability.enabled);
        assert!(config.failure.enabled());
        assert_eq!(config.failure.recovery, RecoveryPolicy::CheckpointRestart);
        assert!(config.validate().is_ok());

        // Constructor shorthands target the right component.
        assert_eq!(
            ConfigPatch::crash_node(1, 5).crash.unwrap().component,
            CrashComponent::Node(1)
        );
        assert_eq!(
            ConfigPatch::crash_link(0, 3, 5).crash.unwrap().component,
            CrashComponent::Link { a: 0, b: 3 }
        );
        // A crash without detection still stays a valid, Copy patch.
        let p = ConfigPatch::crash_nic(0, 9);
        let q = p; // Copy
        assert_eq!(p, q);
        assert_eq!(p.detect, None);
    }

    #[test]
    fn topology_patch_replaces_the_shape() {
        let mut config = ClusterConfig::table2(16);
        assert_eq!(config.fabric.topology, gtn_fabric::Topology::Star);
        ConfigPatch::NONE
            .with_topology(gtn_fabric::Topology::FatTree { k: 4 })
            .apply(&mut config);
        assert_eq!(
            config.fabric.topology,
            gtn_fabric::Topology::FatTree { k: 4 }
        );
        // The edge-crash shorthand addresses graph vertices.
        assert_eq!(
            ConfigPatch::crash_edge(0, 16, 5).crash.unwrap().component,
            CrashComponent::Edge { a: 0, b: 16 }
        );
        // The patch stays Copy + PartialEq with the new knob aboard.
        let p = ConfigPatch::NONE.with_topology(gtn_fabric::Topology::FullMesh);
        let q = p;
        assert_eq!(p, q);
    }

    #[test]
    fn degrade_patch_layers_and_only_drops_imply_arq() {
        // Latency-only straggler: rides the plan without touching the ARQ.
        let mut config = ClusterConfig::table2(4);
        let slow = DegradeSpec::nic(2).latency(5_000).jitter(500);
        ConfigPatch::NONE.with_degrade(slow).apply(&mut config);
        assert_eq!(config.fabric.faults.degrades, vec![slow]);
        assert!(!config.nic.reliability.enabled);
        assert!(config.validate().is_ok());

        // Lossy degrade implies the reliability layer, and layers onto
        // seeded loss without replacing it.
        let mut config = ClusterConfig::table2(4);
        let lossy = DegradeSpec::edge(1, 4).lossy(0.2, 3);
        ConfigPatch::loss(7, 0.01)
            .with_degrade(lossy)
            .apply(&mut config);
        assert_eq!(config.fabric.faults.packet_loss, 0.01);
        assert_eq!(config.fabric.faults.seed, 7);
        assert_eq!(config.fabric.faults.degrades, vec![lossy]);
        assert!(config.nic.reliability.enabled);

        // Flapping drops traffic too, so it also arms the ARQ.
        let mut config = ClusterConfig::table2(4);
        let flappy = DegradeSpec::edge(0, 4).flapping(100_000, 20_000);
        ConfigPatch::NONE.with_degrade(flappy).apply(&mut config);
        assert!(config.nic.reliability.enabled);

        // The patch stays Copy + PartialEq with the new knobs aboard.
        let p = ConfigPatch::NONE.with_degrade(lossy).with_reroute_delay(5);
        let q = p;
        assert_eq!(p, q);
    }

    #[test]
    fn route_around_detection_arms_fabric_failover() {
        let mut config = ClusterConfig::table2(8);
        ConfigPatch::crash_edge(2, 8, 50_000)
            .with_detection(RecoveryPolicy::RouteAround)
            .apply(&mut config);
        assert_eq!(config.failure.recovery, RecoveryPolicy::RouteAround);
        assert_eq!(
            config.fabric.reroute_delay_ns,
            Some(gtn_fabric::DEFAULT_REROUTE_DELAY_NS)
        );
        assert!(config.validate().is_ok());

        // An explicit delay wins over the default.
        let mut config = ClusterConfig::table2(8);
        ConfigPatch::crash_edge(2, 8, 50_000)
            .with_detection(RecoveryPolicy::RouteAround)
            .with_reroute_delay(25_000)
            .apply(&mut config);
        assert_eq!(config.fabric.reroute_delay_ns, Some(25_000));

        // Other policies leave failover unarmed.
        let mut config = ClusterConfig::table2(8);
        ConfigPatch::crash_node(1, 50_000)
            .with_detection(RecoveryPolicy::Abort)
            .apply(&mut config);
        assert_eq!(config.fabric.reroute_delay_ns, None);
    }

    #[test]
    fn failure_patch_overrides_cadence_and_composes_with_detect() {
        use crate::membership::{DetectorKind, FailureConfig};
        // Wholesale detector tuning: the φ-accrual preset rides the patch
        // through validation.
        let mut config = ClusterConfig::table2(4);
        ConfigPatch::crash_node(2, 1_000_000)
            .with_failure(FailureConfig::phi_accrual())
            .with_detection(RecoveryPolicy::RouteAround)
            .apply(&mut config);
        assert_eq!(config.failure.detector, DetectorKind::PhiAccrual);
        assert_eq!(config.failure.recovery, RecoveryPolicy::RouteAround);
        assert_eq!(
            config.failure.heartbeat_period_ns,
            FailureConfig::detection().heartbeat_period_ns,
            "detect must not clobber the explicit cadence"
        );
        assert!(config.validate().is_ok());

        // failure alone keeps its own recovery policy.
        let mut config = ClusterConfig::table2(4);
        ConfigPatch::NONE
            .with_failure(FailureConfig::phi_accrual())
            .apply(&mut config);
        assert_eq!(config.failure.recovery, RecoveryPolicy::Abort);
        assert!(config.failure.enabled());
    }

    #[test]
    fn zero_rate_loss_patch_is_the_lossless_baseline() {
        let mut config = ClusterConfig::table2(2);
        let before = format!("{:?}", config.fabric.faults);
        ConfigPatch::loss(2, 0.0).apply(&mut config);
        assert_eq!(format!("{:?}", config.fabric.faults), before);
        assert!(!config.nic.reliability.enabled);
    }
}
