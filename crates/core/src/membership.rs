//! Failure detection: heartbeats, leases, and per-node membership views.
//!
//! Crash-stop failures (see `gtn_fabric::faults::CrashSpec`) are silent —
//! a dead node simply stops participating. Detection is therefore a
//! protocol, not an oracle: every node's host agent broadcasts a tiny
//! liveness probe each [`FailureConfig::heartbeat_period_ns`], charged the
//! real fabric latency and judged by the same fault plan as data traffic
//! (a probe through a crashed link is black-holed like anything else). Each
//! node folds arrivals into its own [`MembershipView`] and classifies every
//! peer by lease age: [`Liveness::Alive`] within
//! [`FailureConfig::suspect_after_ns`], [`Liveness::Suspect`] beyond it,
//! [`Liveness::Dead`] beyond [`FailureConfig::dead_after_ns`].
//!
//! Probes travel on the control lane — straight from host agent to fabric,
//! bypassing the NIC's trigger CAM, completion queue, and flow-control
//! machinery — so *resource pressure cannot starve detection*: a cluster
//! grinding through a tiny CQ still heartbeats on schedule. Combined with a
//! dead threshold many periods deep, that is what makes the detector sound
//! under pure loss/pressure: declaring a live peer dead requires every one
//! of `dead_after_ns / heartbeat_period_ns` consecutive probes (20 at the
//! defaults) to be lost independently, which at any sub-certainty loss rate
//! has vanishing probability — and the property test in
//! `gtn-workloads/tests/proptest_chaos.rs` pins it.
//!
//! The views are *per observer* on purpose: with a crashed link, node A may
//! correctly consider node B dead while node C still hears from B. Policy
//! (abort, restart, rebuild) belongs to the layer above; this module only
//! answers "who have *I* heard from, and how recently".

use serde::{Deserialize, Serialize};

use gtn_sim::time::{SimDuration, SimTime};

/// What to do about a detected crash-stop failure. Carried in
/// [`FailureConfig`] so one scenario knob selects the policy; the cluster
/// run loop always terminates with a structured
/// [`crate::stall::StallReason::PeerDead`] report on detection, and the
/// workload-level chaos driver interprets the policy (abort vs. re-run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Structured job failure: surface the culprit and stop.
    #[default]
    Abort,
    /// Re-run from the last verified checkpoint on a repaired topology
    /// (the classic HPC respawn-and-restart).
    CheckpointRestart,
    /// Re-derive the collective's ring/round schedule around the dead rank
    /// and re-run on the surviving membership, NCCL-style.
    RebuildCollective,
}

impl RecoveryPolicy {
    /// Stable lower-case name for reports and bench grids.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::Abort => "abort",
            RecoveryPolicy::CheckpointRestart => "checkpoint-restart",
            RecoveryPolicy::RebuildCollective => "rebuild-collective",
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Heartbeat/lease parameters plus the recovery policy. The default (see
/// [`FailureConfig::off`]) disables detection entirely: no probe events are
/// ever scheduled, so runs without it are bit-identical to a build that has
/// never heard of failure detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Probe broadcast period per node, ns. Zero disables detection.
    pub heartbeat_period_ns: u64,
    /// Lease age beyond which a peer is [`Liveness::Suspect`], ns.
    pub suspect_after_ns: u64,
    /// Lease age beyond which a peer is [`Liveness::Dead`], ns. Must be
    /// many heartbeat periods deep (the defaults use 20) so consecutive
    /// probe loss — not death — cannot plausibly exhaust the lease.
    pub dead_after_ns: u64,
    /// What the run's owner wants done about a detected death.
    pub recovery: RecoveryPolicy,
}

impl FailureConfig {
    /// Detection off (the default): zero probes, zero overhead.
    pub fn off() -> Self {
        FailureConfig {
            heartbeat_period_ns: 0,
            suspect_after_ns: 0,
            dead_after_ns: 0,
            recovery: RecoveryPolicy::Abort,
        }
    }

    /// Default detection cadence: 100 us probes, suspect after 600 us
    /// (6 missed), dead after 2 ms (20 missed). Detection latency is then
    /// ~2 ms of sim time — far under the 50 ms stall watchdog — while a
    /// false positive needs 20 consecutive independent probe losses.
    pub fn detection() -> Self {
        FailureConfig {
            heartbeat_period_ns: 100_000,
            suspect_after_ns: 600_000,
            dead_after_ns: 2_000_000,
            recovery: RecoveryPolicy::Abort,
        }
    }

    /// [`FailureConfig::detection`] with an explicit policy.
    pub fn with_recovery(recovery: RecoveryPolicy) -> Self {
        FailureConfig {
            recovery,
            ..FailureConfig::detection()
        }
    }

    /// True when detection is active.
    pub fn enabled(&self) -> bool {
        self.heartbeat_period_ns > 0
    }

    /// Validate invariants; called by `ClusterConfig::validate`.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        if self.suspect_after_ns <= self.heartbeat_period_ns {
            return Err("suspect_after_ns must exceed the heartbeat period".into());
        }
        if self.dead_after_ns <= self.suspect_after_ns {
            return Err("dead_after_ns must exceed suspect_after_ns".into());
        }
        Ok(())
    }
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig::off()
    }
}

/// One observer's classification of one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heard from within the suspect lease.
    Alive,
    /// Lease aging: no probe within `suspect_after_ns`. Not actionable —
    /// pure loss or pressure can plausibly cause this.
    Suspect,
    /// Lease expired: no probe within `dead_after_ns`. Actionable.
    Dead,
}

/// One node's view of everyone else's liveness, driven purely by probe
/// arrivals — no global knowledge, no oracle.
#[derive(Debug, Clone)]
pub struct MembershipView {
    observer: u32,
    /// Latest probe arrival per peer. A node has trivially "heard from"
    /// itself at all times; the slot for `observer` is unused.
    last_heard: Vec<SimTime>,
}

impl MembershipView {
    /// A fresh view for `observer` in an `n_nodes` cluster. Every lease
    /// starts at time zero: a peer that never probes at all is declared
    /// dead `dead_after_ns` into the run.
    pub fn new(observer: u32, n_nodes: u32) -> Self {
        MembershipView {
            observer,
            last_heard: vec![SimTime::ZERO; n_nodes as usize],
        }
    }

    /// The observing node.
    pub fn observer(&self) -> u32 {
        self.observer
    }

    /// A probe from `peer` arrived at `now`.
    pub fn record_alive(&mut self, peer: u32, now: SimTime) {
        let slot = &mut self.last_heard[peer as usize];
        if now > *slot {
            *slot = now;
        }
    }

    /// When the observer last heard from `peer`.
    pub fn last_heard(&self, peer: u32) -> SimTime {
        self.last_heard[peer as usize]
    }

    /// Classify `peer` by lease age at `now`.
    pub fn liveness(&self, peer: u32, now: SimTime, config: &FailureConfig) -> Liveness {
        if peer == self.observer {
            return Liveness::Alive;
        }
        let age = now.since(self.last_heard[peer as usize]);
        if age > SimDuration::from_ns(config.dead_after_ns) {
            Liveness::Dead
        } else if age > SimDuration::from_ns(config.suspect_after_ns) {
            Liveness::Suspect
        } else {
            Liveness::Alive
        }
    }

    /// The lowest-numbered peer this observer considers dead at `now`, if
    /// any — the deterministic pick when several leases expire together.
    pub fn first_dead(&self, now: SimTime, config: &FailureConfig) -> Option<u32> {
        (0..self.last_heard.len() as u32).find(|&p| self.liveness(p, now, config) == Liveness::Dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FailureConfig {
        FailureConfig::detection()
    }

    #[test]
    fn off_is_default_and_valid() {
        assert_eq!(FailureConfig::default(), FailureConfig::off());
        assert!(!FailureConfig::off().enabled());
        assert!(FailureConfig::off().validate().is_ok());
        assert!(FailureConfig::detection().enabled());
        assert!(FailureConfig::detection().validate().is_ok());
    }

    #[test]
    fn validation_orders_the_lease_thresholds() {
        let mut c = FailureConfig::detection();
        c.suspect_after_ns = c.heartbeat_period_ns;
        assert!(c.validate().is_err());
        let mut c = FailureConfig::detection();
        c.dead_after_ns = c.suspect_after_ns;
        assert!(c.validate().is_err());
    }

    #[test]
    fn lease_ages_through_alive_suspect_dead() {
        let mut v = MembershipView::new(0, 3);
        v.record_alive(1, SimTime::from_ns(100_000));
        let at = |ns| SimTime::from_ns(ns);
        assert_eq!(v.liveness(1, at(200_000), &cfg()), Liveness::Alive);
        assert_eq!(v.liveness(1, at(800_000), &cfg()), Liveness::Suspect);
        assert_eq!(v.liveness(1, at(2_200_000), &cfg()), Liveness::Dead);
        // A fresh probe renews the lease in full.
        v.record_alive(1, at(2_150_000));
        assert_eq!(v.liveness(1, at(2_200_000), &cfg()), Liveness::Alive);
        // The observer is trivially alive to itself; silent peers expire.
        assert_eq!(v.liveness(0, at(9_000_000), &cfg()), Liveness::Alive);
        assert_eq!(v.first_dead(at(9_000_000), &cfg()), Some(1));
    }

    #[test]
    fn stale_probe_arrivals_never_roll_a_lease_back() {
        let mut v = MembershipView::new(0, 2);
        v.record_alive(1, SimTime::from_ns(500));
        v.record_alive(1, SimTime::from_ns(300));
        assert_eq!(v.last_heard(1), SimTime::from_ns(500));
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(RecoveryPolicy::Abort.name(), "abort");
        assert_eq!(
            RecoveryPolicy::CheckpointRestart.to_string(),
            "checkpoint-restart"
        );
        assert_eq!(
            RecoveryPolicy::RebuildCollective.name(),
            "rebuild-collective"
        );
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Abort);
    }
}
