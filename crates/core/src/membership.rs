//! Failure detection: heartbeats, leases, and per-node membership views.
//!
//! Crash-stop failures (see `gtn_fabric::faults::CrashSpec`) are silent —
//! a dead node simply stops participating. Detection is therefore a
//! protocol, not an oracle: every node's host agent broadcasts a tiny
//! liveness probe each [`FailureConfig::heartbeat_period_ns`], charged the
//! real fabric latency and judged by the same fault plan as data traffic
//! (a probe through a crashed link is black-holed like anything else). Each
//! node folds arrivals into its own [`MembershipView`] and classifies every
//! peer by lease age: [`Liveness::Alive`] within
//! [`FailureConfig::suspect_after_ns`], [`Liveness::Suspect`] beyond it,
//! [`Liveness::Dead`] beyond [`FailureConfig::dead_after_ns`].
//!
//! Probes travel on the control lane — straight from host agent to fabric,
//! bypassing the NIC's trigger CAM, completion queue, and flow-control
//! machinery — so *resource pressure cannot starve detection*: a cluster
//! grinding through a tiny CQ still heartbeats on schedule. Combined with a
//! dead threshold many periods deep, that is what makes the detector sound
//! under pure loss/pressure: declaring a live peer dead requires every one
//! of `dead_after_ns / heartbeat_period_ns` consecutive probes (20 at the
//! defaults) to be lost independently, which at any sub-certainty loss rate
//! has vanishing probability — and the property test in
//! `gtn-workloads/tests/proptest_chaos.rs` pins it.
//!
//! The views are *per observer* on purpose: with a crashed link, node A may
//! correctly consider node B dead while node C still hears from B. Policy
//! (abort, restart, rebuild) belongs to the layer above; this module only
//! answers "who have *I* heard from, and how recently".

use serde::{Deserialize, Serialize};

use gtn_sim::time::{SimDuration, SimTime};

/// What to do about a detected crash-stop failure. Carried in
/// [`FailureConfig`] so one scenario knob selects the policy; the cluster
/// run loop always terminates with a structured
/// [`crate::stall::StallReason::PeerDead`] report on detection, and the
/// workload-level chaos driver interprets the policy (abort vs. re-run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Structured job failure: surface the culprit and stop.
    #[default]
    Abort,
    /// Re-run from the last verified checkpoint on a repaired topology
    /// (the classic HPC respawn-and-restart).
    CheckpointRestart,
    /// Re-derive the collective's ring/round schedule around the dead rank
    /// and re-run on the surviving membership, NCCL-style.
    RebuildCollective,
    /// Arm the fabric's route-around failover: a crashed or persistently
    /// degraded routed edge is withdrawn from the routing tables (after a
    /// switch-local detection delay) and traffic repairs onto surviving
    /// equal-cost paths. On multipath topologies a link crash becomes a
    /// latency blip instead of a job abort; `PeerDead` remains the
    /// fallback when the surviving graph is truly partitioned.
    RouteAround,
}

impl RecoveryPolicy {
    /// Stable lower-case name for reports and bench grids.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::Abort => "abort",
            RecoveryPolicy::CheckpointRestart => "checkpoint-restart",
            RecoveryPolicy::RebuildCollective => "rebuild-collective",
            RecoveryPolicy::RouteAround => "route-around",
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which algorithm classifies lease age into [`Liveness`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Fixed thresholds: suspect past `suspect_after_ns`, dead past
    /// `dead_after_ns`, regardless of observed network behaviour.
    #[default]
    FixedLease,
    /// φ-accrual style: each observer keeps a ring of recent probe
    /// inter-arrival times per peer and computes a suspicion level
    /// `φ = log10-odds that silence this long is a crash`, scaled by the
    /// observed mean + σ. Detection latency tracks actual network
    /// behaviour: a quiet fabric detects in ~φ_dead·scale (well under the
    /// fixed lease), while jitter/loss inflate the scale and push the
    /// thresholds out instead of false-positiving. Falls back to the
    /// fixed lease until `phi_min_samples` intervals have been observed.
    PhiAccrual,
}

/// Heartbeat/lease parameters plus the recovery policy. The default (see
/// [`FailureConfig::off`]) disables detection entirely: no probe events are
/// ever scheduled, so runs without it are bit-identical to a build that has
/// never heard of failure detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Probe broadcast period per node, ns. Zero disables detection.
    pub heartbeat_period_ns: u64,
    /// Lease age beyond which a peer is [`Liveness::Suspect`], ns.
    pub suspect_after_ns: u64,
    /// Lease age beyond which a peer is [`Liveness::Dead`], ns. Must be
    /// many heartbeat periods deep (the defaults use 20) so consecutive
    /// probe loss — not death — cannot plausibly exhaust the lease.
    pub dead_after_ns: u64,
    /// What the run's owner wants done about a detected death.
    pub recovery: RecoveryPolicy,
    /// Which detection algorithm to run (`serde(default)` keeps configs
    /// recorded before φ-accrual existed loadable as fixed-lease).
    #[serde(default)]
    pub detector: DetectorKind,
    /// φ level at which a peer turns [`Liveness::Suspect`].
    #[serde(default = "default_phi_suspect")]
    pub phi_suspect: f64,
    /// φ level at which a peer turns [`Liveness::Dead`]. φ = 6 means the
    /// observed inter-arrival model puts the odds of this much silence
    /// from a live peer at 10⁻⁶.
    #[serde(default = "default_phi_dead")]
    pub phi_dead: f64,
    /// Observed intervals required before φ replaces the fixed lease
    /// (warm-up; at most the history ring size of 32).
    #[serde(default = "default_phi_min_samples")]
    pub phi_min_samples: u32,
}

fn default_phi_suspect() -> f64 {
    2.0
}

fn default_phi_dead() -> f64 {
    6.0
}

fn default_phi_min_samples() -> u32 {
    8
}

impl FailureConfig {
    /// Detection off (the default): zero probes, zero overhead.
    pub fn off() -> Self {
        FailureConfig {
            heartbeat_period_ns: 0,
            suspect_after_ns: 0,
            dead_after_ns: 0,
            recovery: RecoveryPolicy::Abort,
            detector: DetectorKind::FixedLease,
            phi_suspect: default_phi_suspect(),
            phi_dead: default_phi_dead(),
            phi_min_samples: default_phi_min_samples(),
        }
    }

    /// Default detection cadence: 100 us probes, suspect after 600 us
    /// (6 missed), dead after 2 ms (20 missed). Detection latency is then
    /// ~2 ms of sim time — far under the 50 ms stall watchdog — while a
    /// false positive needs 20 consecutive independent probe losses.
    pub fn detection() -> Self {
        FailureConfig {
            heartbeat_period_ns: 100_000,
            suspect_after_ns: 600_000,
            dead_after_ns: 2_000_000,
            ..FailureConfig::off()
        }
    }

    /// [`FailureConfig::detection`] with the adaptive φ-accrual detector
    /// selected: same probe cadence and lease *fallback*, but once eight
    /// inter-arrival samples are in, suspicion follows the observed
    /// network. On a healthy fabric (scale ≈ the 100 µs period) φ = 6 is
    /// reached ~1.4 ms into a true silence — strictly inside the 2 ms
    /// fixed lease — while 20% probe loss inflates the scale ~1.8× and
    /// pushes a false positive out to ~25 consecutive losses.
    pub fn phi_accrual() -> Self {
        FailureConfig {
            detector: DetectorKind::PhiAccrual,
            ..FailureConfig::detection()
        }
    }

    /// [`FailureConfig::detection`] with an explicit policy.
    pub fn with_recovery(recovery: RecoveryPolicy) -> Self {
        FailureConfig {
            recovery,
            ..FailureConfig::detection()
        }
    }

    /// This config with a different detector kind.
    pub fn with_detector(mut self, detector: DetectorKind) -> Self {
        self.detector = detector;
        self
    }

    /// True when detection is active.
    pub fn enabled(&self) -> bool {
        self.heartbeat_period_ns > 0
    }

    /// Validate invariants; called by `ClusterConfig::validate`.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        if self.suspect_after_ns <= self.heartbeat_period_ns {
            return Err("suspect_after_ns must exceed the heartbeat period".into());
        }
        if self.dead_after_ns <= self.suspect_after_ns {
            return Err("dead_after_ns must exceed suspect_after_ns".into());
        }
        if self.detector == DetectorKind::PhiAccrual {
            if self.phi_suspect <= 0.0 || self.phi_suspect.is_nan() {
                return Err("phi_suspect must be positive".into());
            }
            if self.phi_dead <= self.phi_suspect || self.phi_dead.is_nan() {
                return Err("phi_dead must exceed phi_suspect".into());
            }
            if self.phi_min_samples < 2 || self.phi_min_samples as usize > PHI_RING {
                return Err(format!(
                    "phi_min_samples must be in [2, {PHI_RING}] (the history ring size)"
                ));
            }
        }
        Ok(())
    }
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig::off()
    }
}

/// One observer's classification of one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heard from within the suspect lease.
    Alive,
    /// Lease aging: no probe within `suspect_after_ns`. Not actionable —
    /// pure loss or pressure can plausibly cause this.
    Suspect,
    /// Lease expired: no probe within `dead_after_ns`. Actionable.
    Dead,
}

/// History ring size per peer: enough samples for a stable mean/σ, small
/// enough that behaviour shifts (a degrade window opening) age out fast.
pub const PHI_RING: usize = 32;

/// Recent probe inter-arrival times from one peer, ns.
#[derive(Debug, Clone)]
struct PeerHistory {
    intervals: [u64; PHI_RING],
    len: u8,
    next: u8,
}

impl PeerHistory {
    fn new() -> Self {
        PeerHistory {
            intervals: [0; PHI_RING],
            len: 0,
            next: 0,
        }
    }

    fn record(&mut self, interval_ns: u64) {
        self.intervals[self.next as usize] = interval_ns;
        self.next = (self.next + 1) % PHI_RING as u8;
        self.len = (self.len + 1).min(PHI_RING as u8);
    }

    fn samples(&self) -> u32 {
        self.len as u32
    }

    /// Mean and standard deviation of the recorded intervals, ns.
    fn mean_std(&self) -> (f64, f64) {
        let n = self.len as usize;
        debug_assert!(n > 0);
        let mut sum = 0.0;
        for &v in &self.intervals[..n] {
            sum += v as f64;
        }
        let mean = sum / n as f64;
        let mut var = 0.0;
        for &v in &self.intervals[..n] {
            let d = v as f64 - mean;
            var += d * d;
        }
        (mean, (var / n as f64).sqrt())
    }
}

/// One node's view of everyone else's liveness, driven purely by probe
/// arrivals — no global knowledge, no oracle.
#[derive(Debug, Clone)]
pub struct MembershipView {
    observer: u32,
    /// Latest probe arrival per peer. A node has trivially "heard from"
    /// itself at all times; the slot for `observer` is unused.
    last_heard: Vec<SimTime>,
    /// Inter-arrival history per peer, feeding the φ-accrual detector.
    /// Recorded unconditionally (it is cheap) so the detector kind can be
    /// compared on identical observations.
    history: Vec<PeerHistory>,
}

impl MembershipView {
    /// A fresh view for `observer` in an `n_nodes` cluster. Every lease
    /// starts at time zero: a peer that never probes at all is declared
    /// dead `dead_after_ns` into the run.
    pub fn new(observer: u32, n_nodes: u32) -> Self {
        MembershipView {
            observer,
            last_heard: vec![SimTime::ZERO; n_nodes as usize],
            history: vec![PeerHistory::new(); n_nodes as usize],
        }
    }

    /// The observing node.
    pub fn observer(&self) -> u32 {
        self.observer
    }

    /// A probe from `peer` arrived at `now`.
    pub fn record_alive(&mut self, peer: u32, now: SimTime) {
        let slot = &mut self.last_heard[peer as usize];
        if now > *slot {
            let interval = now.since(*slot);
            self.history[peer as usize].record(interval.as_ps() / 1000);
            *slot = now;
        }
    }

    /// When the observer last heard from `peer`.
    pub fn last_heard(&self, peer: u32) -> SimTime {
        self.last_heard[peer as usize]
    }

    /// The φ suspicion level for `peer` at `now`: `0.4343 · age / scale`,
    /// where `scale = mean + σ` of the observed inter-arrival ring,
    /// floored at the heartbeat period (a suspiciously regular fabric must
    /// not make the detector hair-triggered). One σ of headroom keeps the
    /// detector honest both ways: ordinary queueing jitter widens the
    /// scale only linearly (so a calm fabric still convicts well inside
    /// the fixed lease), while genuinely erratic arrivals still push the
    /// death threshold out with their σ. `None` until `phi_min_samples`
    /// intervals have been observed — callers fall back to the fixed
    /// lease during warm-up.
    pub fn phi(&self, peer: u32, now: SimTime, config: &FailureConfig) -> Option<f64> {
        let h = &self.history[peer as usize];
        if h.samples() < config.phi_min_samples {
            return None;
        }
        let (mean, std) = h.mean_std();
        let scale = (mean + std).max(config.heartbeat_period_ns as f64);
        let age_ns = now.since(self.last_heard[peer as usize]).as_ps() as f64 / 1000.0;
        // Exponential-tail model: P(silence ≥ age | alive) = exp(-age/scale),
        // φ = -log10 of that = age / (scale · ln 10).
        Some(std::f64::consts::LOG10_E * age_ns / scale)
    }

    /// Classify `peer` at `now` under the configured detector.
    pub fn liveness(&self, peer: u32, now: SimTime, config: &FailureConfig) -> Liveness {
        if peer == self.observer {
            return Liveness::Alive;
        }
        if config.detector == DetectorKind::PhiAccrual {
            if let Some(phi) = self.phi(peer, now, config) {
                return if phi >= config.phi_dead {
                    Liveness::Dead
                } else if phi >= config.phi_suspect {
                    Liveness::Suspect
                } else {
                    Liveness::Alive
                };
            }
        }
        let age = now.since(self.last_heard[peer as usize]);
        if age > SimDuration::from_ns(config.dead_after_ns) {
            Liveness::Dead
        } else if age > SimDuration::from_ns(config.suspect_after_ns) {
            Liveness::Suspect
        } else {
            Liveness::Alive
        }
    }

    /// The lowest-numbered peer this observer considers dead at `now`, if
    /// any — the deterministic pick when several leases expire together.
    pub fn first_dead(&self, now: SimTime, config: &FailureConfig) -> Option<u32> {
        (0..self.last_heard.len() as u32).find(|&p| self.liveness(p, now, config) == Liveness::Dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FailureConfig {
        FailureConfig::detection()
    }

    #[test]
    fn off_is_default_and_valid() {
        assert_eq!(FailureConfig::default(), FailureConfig::off());
        assert!(!FailureConfig::off().enabled());
        assert!(FailureConfig::off().validate().is_ok());
        assert!(FailureConfig::detection().enabled());
        assert!(FailureConfig::detection().validate().is_ok());
    }

    #[test]
    fn validation_orders_the_lease_thresholds() {
        let mut c = FailureConfig::detection();
        c.suspect_after_ns = c.heartbeat_period_ns;
        assert!(c.validate().is_err());
        let mut c = FailureConfig::detection();
        c.dead_after_ns = c.suspect_after_ns;
        assert!(c.validate().is_err());
    }

    #[test]
    fn lease_ages_through_alive_suspect_dead() {
        let mut v = MembershipView::new(0, 3);
        v.record_alive(1, SimTime::from_ns(100_000));
        let at = |ns| SimTime::from_ns(ns);
        assert_eq!(v.liveness(1, at(200_000), &cfg()), Liveness::Alive);
        assert_eq!(v.liveness(1, at(800_000), &cfg()), Liveness::Suspect);
        assert_eq!(v.liveness(1, at(2_200_000), &cfg()), Liveness::Dead);
        // A fresh probe renews the lease in full.
        v.record_alive(1, at(2_150_000));
        assert_eq!(v.liveness(1, at(2_200_000), &cfg()), Liveness::Alive);
        // The observer is trivially alive to itself; silent peers expire.
        assert_eq!(v.liveness(0, at(9_000_000), &cfg()), Liveness::Alive);
        assert_eq!(v.first_dead(at(9_000_000), &cfg()), Some(1));
    }

    #[test]
    fn stale_probe_arrivals_never_roll_a_lease_back() {
        let mut v = MembershipView::new(0, 2);
        v.record_alive(1, SimTime::from_ns(500));
        v.record_alive(1, SimTime::from_ns(300));
        assert_eq!(v.last_heard(1), SimTime::from_ns(500));
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(RecoveryPolicy::Abort.name(), "abort");
        assert_eq!(
            RecoveryPolicy::CheckpointRestart.to_string(),
            "checkpoint-restart"
        );
        assert_eq!(
            RecoveryPolicy::RebuildCollective.name(),
            "rebuild-collective"
        );
        assert_eq!(RecoveryPolicy::RouteAround.name(), "route-around");
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Abort);
    }

    /// Feed `n` regular probes at `period_ns` and return the view.
    fn warm_view(n: u64, period_ns: u64, jitter: impl Fn(u64) -> i64) -> (MembershipView, SimTime) {
        let mut v = MembershipView::new(0, 2);
        let mut last = SimTime::ZERO;
        for i in 1..=n {
            let t = (i * period_ns) as i64 + jitter(i);
            last = SimTime::from_ns(t as u64);
            v.record_alive(1, last);
        }
        (v, last)
    }

    #[test]
    fn phi_warms_up_on_the_fixed_lease() {
        let cfg = FailureConfig::phi_accrual();
        let (v, last) = warm_view(3, 100_000, |_| 0);
        assert!(v.phi(1, last, &cfg).is_none(), "3 samples < min 8");
        // Below min samples the fixed lease still classifies.
        let much_later = last + SimDuration::from_ns(3_000_000);
        assert_eq!(v.liveness(1, much_later, &cfg), Liveness::Dead);
    }

    #[test]
    fn phi_detects_a_true_crash_strictly_faster_than_the_lease() {
        let phi_cfg = FailureConfig::phi_accrual();
        let lease_cfg = FailureConfig::detection();
        let (v, last) = warm_view(20, 100_000, |_| 0);
        // Regular 100 µs arrivals: scale = period floor, φ = 6 at
        // ~1.38 ms of silence. The fixed lease needs the full 2 ms.
        let phi_dead_at = (0..)
            .map(|k| last + SimDuration::from_ns(k * 10_000))
            .find(|&t| v.liveness(1, t, &phi_cfg) == Liveness::Dead)
            .unwrap();
        let lease_dead_at = (0..)
            .map(|k| last + SimDuration::from_ns(k * 10_000))
            .find(|&t| v.liveness(1, t, &lease_cfg) == Liveness::Dead)
            .unwrap();
        assert!(
            phi_dead_at < lease_dead_at,
            "phi {phi_dead_at} vs lease {lease_dead_at}"
        );
        // And the detection latency is in the predicted ~1.4 ms band.
        let latency_ns = phi_dead_at.since(last).as_ps() / 1000;
        assert!(
            (1_300_000..1_500_000).contains(&latency_ns),
            "latency {latency_ns} ns"
        );
    }

    #[test]
    fn phi_tolerates_the_silence_that_its_history_predicts() {
        // Erratic arrivals (alternating 100 µs / 500 µs gaps): σ is large,
        // so a 1.4 ms silence — a sure death sentence on a quiet fabric —
        // stays below φ_dead here.
        let cfg = FailureConfig::phi_accrual();
        let mut v = MembershipView::new(0, 2);
        let mut t_ns = 0u64;
        for i in 1..=20u64 {
            t_ns += if i % 2 == 0 { 100_000 } else { 500_000 };
            v.record_alive(1, SimTime::from_ns(t_ns));
        }
        let last = SimTime::from_ns(t_ns);
        let probe = last + SimDuration::from_ns(1_400_000);
        assert_ne!(v.liveness(1, probe, &cfg), Liveness::Dead);
        // But silence far beyond the observed behaviour still convicts.
        let long = last + SimDuration::from_ns(20_000_000);
        assert_eq!(v.liveness(1, long, &cfg), Liveness::Dead);
    }

    #[test]
    fn phi_scale_is_floored_at_the_heartbeat_period() {
        // Implausibly tight arrivals (1 µs apart) must not hair-trigger:
        // the scale floor keeps φ growth bounded by the configured period.
        let cfg = FailureConfig::phi_accrual();
        let (v, last) = warm_view(20, 1_000, |_| 0);
        let after = last + SimDuration::from_ns(100_000); // 1 period
        let phi = v.phi(1, after, &cfg).unwrap();
        assert!(phi < 1.0, "phi {phi} should be ~0.43 at one period");
    }

    #[test]
    fn phi_validation_checks_thresholds_and_samples() {
        let mut c = FailureConfig::phi_accrual();
        assert!(c.validate().is_ok());
        c.phi_dead = c.phi_suspect;
        assert!(c.validate().is_err());
        let mut c = FailureConfig::phi_accrual();
        c.phi_suspect = 0.0;
        assert!(c.validate().is_err());
        let mut c = FailureConfig::phi_accrual();
        c.phi_min_samples = 1;
        assert!(c.validate().is_err());
        c.phi_min_samples = PHI_RING as u32 + 1;
        assert!(c.validate().is_err());
        // The same nonsense is fine on a fixed-lease config (unused).
        let mut c = FailureConfig::detection();
        c.phi_suspect = 0.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn phi_presets_share_the_probe_cadence() {
        let phi = FailureConfig::phi_accrual();
        let lease = FailureConfig::detection();
        assert_eq!(phi.heartbeat_period_ns, lease.heartbeat_period_ns);
        assert_eq!(phi.dead_after_ns, lease.dead_after_ns);
        assert_eq!(phi.detector, DetectorKind::PhiAccrual);
        assert_eq!(lease.detector, DetectorKind::FixedLease);
        assert_eq!(
            lease.with_detector(DetectorKind::PhiAccrual).detector,
            DetectorKind::PhiAccrual
        );
    }
}
