//! Cluster-wide stats registry: every component's [`StatSet`], namespaced
//! and aggregated deterministically.
//!
//! [`crate::cluster::Cluster::collect_stats`] snapshots each node's CPU,
//! GPU, and NIC stats plus the fabric's fault counters and the engine's
//! run counters into one [`ClusterStats`], keyed `node{N}.cpu`,
//! `node{N}.gpu`, `node{N}.nic`, `fabric`, and `engine`. Namespaces
//! iterate in name order (BTreeMap), so rendered reports and the
//! `BENCH_*.json` files built from them are byte-identical across
//! same-seed runs. Cross-node aggregation ([`ClusterStats::merged`])
//! relies on the exact histogram merge — `count`/`mean`/`min`/`max` stay
//! exact no matter how many per-node reservoirs evicted.

use gtn_sim::stats::StatSet;
use std::collections::BTreeMap;
use std::fmt;

/// Namespaced snapshot of every component's stats.
#[derive(Debug, Default, Clone)]
pub struct ClusterStats {
    sets: BTreeMap<String, StatSet>,
}

impl ClusterStats {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or merge into) namespace `ns`.
    pub fn insert(&mut self, ns: &str, set: &StatSet) {
        self.sets.entry(ns.to_owned()).or_default().absorb(set);
    }

    /// The stats under `ns`, if that namespace exists.
    pub fn get(&self, ns: &str) -> Option<&StatSet> {
        self.sets.get(ns)
    }

    /// Namespaces in name order.
    pub fn namespaces(&self) -> impl Iterator<Item = &str> + '_ {
        self.sets.keys().map(String::as_str)
    }

    /// Iterate `(namespace, stats)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StatSet)> + '_ {
        self.sets.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Counter `name` under `ns` (zero when either is absent).
    pub fn counter(&self, ns: &str, name: &str) -> u64 {
        self.sets.get(ns).map_or(0, |s| s.counter(name))
    }

    /// Sum of counter `name` across every namespace whose key ends with
    /// `.{suffix}` (e.g. every node's `nic`).
    pub fn counter_across(&self, suffix: &str, name: &str) -> u64 {
        self.component(suffix).map(|(_, s)| s.counter(name)).sum()
    }

    /// Merge every namespace ending in `.{suffix}` into one [`StatSet`]:
    /// counters add, histograms merge exactly. This is how per-stage NIC
    /// latencies become a cluster-wide Fig. 8 decomposition.
    pub fn merged(&self, suffix: &str) -> StatSet {
        let mut out = StatSet::new();
        for (_, set) in self.component(suffix) {
            out.absorb(set);
        }
        out
    }

    fn component<'a>(
        &'a self,
        suffix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a StatSet)> + 'a {
        self.sets
            .iter()
            .filter(move |(k, _)| k.as_str() == suffix || k.ends_with(&format!(".{suffix}")))
            .map(|(k, v)| (k.as_str(), v))
    }
}

impl fmt::Display for ClusterStats {
    /// Deterministic multi-line rendering: namespaces, then counters and
    /// histograms, all in name order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (ns, set) in &self.sets {
            let mut wrote_header = false;
            let mut header = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
                if !wrote_header {
                    wrote_header = true;
                    writeln!(f, "[{ns}]")?;
                }
                Ok(())
            };
            for (name, v) in set.counters() {
                header(f)?;
                writeln!(f, "  {name} = {v}")?;
            }
            for (name, h) in set.histograms() {
                header(f)?;
                writeln!(f, "  {name}: {h}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_sim::time::SimDuration;

    fn set_with(counter: u64, ns: Option<u64>) -> StatSet {
        let mut s = StatSet::new();
        s.add("ops", counter);
        if let Some(n) = ns {
            s.record("lat", SimDuration::from_ns(n));
        }
        s
    }

    #[test]
    fn namespaces_iterate_sorted_and_lookup_works() {
        let mut cs = ClusterStats::new();
        cs.insert("node1.nic", &set_with(2, None));
        cs.insert("node0.nic", &set_with(1, None));
        cs.insert("fabric", &set_with(7, None));
        let names: Vec<&str> = cs.namespaces().collect();
        assert_eq!(names, vec!["fabric", "node0.nic", "node1.nic"]);
        assert_eq!(cs.counter("node0.nic", "ops"), 1);
        assert_eq!(cs.counter("missing", "ops"), 0);
    }

    #[test]
    fn merged_aggregates_across_nodes_exactly() {
        let mut cs = ClusterStats::new();
        cs.insert("node0.nic", &set_with(1, Some(100)));
        cs.insert("node1.nic", &set_with(2, Some(300)));
        cs.insert("node0.cpu", &set_with(50, None)); // different component
        let nic = cs.merged("nic");
        assert_eq!(nic.counter("ops"), 3);
        let h = nic.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), SimDuration::from_ns(200));
        assert_eq!(cs.counter_across("nic", "ops"), 3);
        assert_eq!(cs.counter_across("cpu", "ops"), 50);
    }

    #[test]
    fn display_is_deterministic_and_grouped() {
        let mut cs = ClusterStats::new();
        cs.insert("b", &set_with(1, Some(10)));
        cs.insert("a", &set_with(2, None));
        let s = cs.to_string();
        let a_pos = s.find("[a]").unwrap();
        let b_pos = s.find("[b]").unwrap();
        assert!(a_pos < b_pos, "{s}");
        assert!(s.contains("ops = 2"), "{s}");
        assert_eq!(s, cs.to_string());
    }

    #[test]
    fn insert_merges_repeated_namespaces() {
        let mut cs = ClusterStats::new();
        cs.insert("engine", &set_with(1, None));
        cs.insert("engine", &set_with(4, None));
        assert_eq!(cs.counter("engine", "ops"), 5);
    }
}
