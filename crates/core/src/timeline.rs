//! Latency decompositions from the cluster activity log (Figs. 3 and 8).
//!
//! The Fig. 8 microbenchmark displays, for initiator and target on one
//! absolute time scale, the phases each networking strategy spends time in:
//! kernel launch / execution / teardown on the initiator GPU, the CPU send
//! (HDN only), the NIC put, and the target's wait. [`decompose_pingpong`]
//! reconstructs those spans from the protocol moments the cluster logged.

use crate::cluster::{LogKind, LogRecord};
use crate::config::ClusterConfig;
use gtn_sim::time::{SimDuration, SimTime};
use gtn_sim::trace::Trace;

/// Extract a Fig. 8-style decomposition for a single-message experiment:
/// `initiator` launched one kernel and sent one message to `target`.
///
/// Lanes produced: `initiator.GPU` (Launch / Kernel / Teardown),
/// `initiator.NIC` (Put), `target.NIC` (Deliver), `target.Wait`.
pub fn decompose_pingpong(
    log: &[LogRecord],
    initiator: u32,
    target: u32,
    cfg: &ClusterConfig,
) -> Trace {
    let mut trace = Trace::new();
    let find = |node: u32, pred: &dyn Fn(&LogKind) -> bool| -> Option<SimTime> {
        log.iter()
            .find(|r| r.node == node && pred(&r.kind))
            .map(|r| r.at)
    };

    let enqueued = find(initiator, &|k| matches!(k, LogKind::KernelEnqueued));
    let dispatched = find(initiator, &|k| matches!(k, LogKind::KernelDispatched(_)));
    let done = find(initiator, &|k| matches!(k, LogKind::KernelDone { .. }));
    let teardown = SimDuration::from_ns(cfg.gpu.teardown_ns);

    if let (Some(enq), Some(disp), Some(done)) = (enqueued, dispatched, done) {
        let exec_end = done - teardown;
        trace.span("initiator.GPU", "Launch", enq, disp);
        trace.span("initiator.GPU", "Kernel", disp, exec_end);
        trace.span("initiator.GPU", "Teardown", exec_end, done);
    }

    // CPU send (HDN): the doorbell that carries the payload put. Under
    // GDS/GPU-TN the doorbell is the pre-post, which we label separately.
    if let Some(bell) = find(initiator, &|k| matches!(k, LogKind::DoorbellRung)) {
        let stack = SimDuration::from_ns(cfg.host.send_stack_ns);
        let start = if bell >= SimTime::ZERO + stack {
            bell - stack
        } else {
            SimTime::ZERO
        };
        trace.span("initiator.CPU", "Post", start, bell);
    }
    if let Some(trig) = find(initiator, &|k| matches!(k, LogKind::TriggerWrite(_))) {
        trace.mark("initiator.GPU", "trigger", trig);
    }

    // NIC put: DMA completion (injection) through target commit.
    let dma = find(initiator, &|k| matches!(k, LogKind::PutDmaDone));
    let arrived = find(target, &|k| matches!(k, LogKind::MessageArrived));
    let committed = find(target, &|k| matches!(k, LogKind::MessageCommitted));
    if let (Some(dma), Some(committed)) = (dma, committed) {
        trace.span("initiator.NIC", "Put", dma, committed);
    }
    if let (Some(arrived), Some(committed)) = (arrived, committed) {
        trace.span("target.NIC", "Deliver", arrived, committed);
        trace.span("target.CPU", "Wait", SimTime::ZERO, committed);
    }
    trace
}

/// Render the decomposition as Fig. 8-style rows: one line per lane/phase
/// with absolute start and duration in microseconds.
pub fn phase_table(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<16} {:<10} {:>10} {:>10}", "lane", "phase", "start_us", "dur_us");
    for s in trace.spans() {
        let _ = writeln!(
            out,
            "{:<16} {:<10} {:>10.3} {:>10.3}",
            s.lane,
            s.label,
            s.start.as_us_f64(),
            s.duration().as_us_f64()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ns: u64, node: u32, kind: LogKind) -> LogRecord {
        LogRecord {
            at: SimTime::from_ns(at_ns),
            node,
            kind,
        }
    }

    fn sample_log() -> Vec<LogRecord> {
        vec![
            rec(150, 0, LogKind::DoorbellRung),
            rec(300, 0, LogKind::KernelEnqueued),
            rec(1_800, 0, LogKind::KernelDispatched(0)),
            rec(2_250, 0, LogKind::TriggerWrite(1)),
            rec(2_500, 0, LogKind::PutDmaDone),
            rec(2_900, 1, LogKind::MessageArrived),
            rec(3_000, 1, LogKind::MessageCommitted),
            rec(
                3_790,
                0,
                LogKind::KernelDone {
                    kid: 0,
                    label: "k".into(),
                },
            ),
        ]
    }

    #[test]
    fn decomposition_builds_gpu_phases() {
        let cfg = ClusterConfig::table2(2);
        let t = decompose_pingpong(&sample_log(), 0, 1, &cfg);
        let launch = t.find("initiator.GPU", "Launch").unwrap();
        assert_eq!(launch.start, SimTime::from_ns(300));
        assert_eq!(launch.end, SimTime::from_ns(1_800));
        let kernel = t.find("initiator.GPU", "Kernel").unwrap();
        assert_eq!(kernel.end, SimTime::from_ns(3_790 - 1_500));
        let td = t.find("initiator.GPU", "Teardown").unwrap();
        assert_eq!(td.duration(), SimDuration::from_ns(1_500));
        let put = t.find("initiator.NIC", "Put").unwrap();
        assert_eq!(put.start, SimTime::from_ns(2_500));
        assert_eq!(put.end, SimTime::from_ns(3_000));
        assert!(t.find("target.NIC", "Deliver").is_some());
        assert!(t.find("target.CPU", "Wait").is_some());
    }

    #[test]
    fn phase_table_lists_all_spans() {
        let cfg = ClusterConfig::table2(2);
        let t = decompose_pingpong(&sample_log(), 0, 1, &cfg);
        let table = phase_table(&t);
        for needle in ["Launch", "Kernel", "Teardown", "Put", "Deliver", "Wait"] {
            assert!(table.contains(needle), "missing {needle}:\n{table}");
        }
    }

    #[test]
    fn partial_logs_degrade_gracefully() {
        let cfg = ClusterConfig::table2(2);
        let t = decompose_pingpong(&[], 0, 1, &cfg);
        assert!(t.spans().is_empty());
        let t = decompose_pingpong(
            &[rec(100, 0, LogKind::KernelEnqueued)],
            0,
            1,
            &cfg,
        );
        assert!(t.find("initiator.GPU", "Launch").is_none());
    }
}
