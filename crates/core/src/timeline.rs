//! Latency decompositions from the cluster activity log (Figs. 3 and 8).
//!
//! The Fig. 8 microbenchmark displays, for initiator and target on one
//! absolute time scale, the phases each networking strategy spends time in:
//! kernel launch / execution / teardown on the initiator GPU, the CPU send
//! (HDN only), the NIC put, and the target's wait. [`decompose_pingpong`]
//! reconstructs those spans from the protocol moments the cluster logged.

use crate::cluster::{LogKind, LogRecord};
use crate::config::ClusterConfig;
use gtn_sim::time::{SimDuration, SimTime};
use gtn_sim::trace::Trace;

/// Extract a Fig. 8-style decomposition for a single-message experiment:
/// `initiator` launched one kernel and sent one message to `target`.
///
/// Lanes produced: `initiator.GPU` (Launch / Kernel / Teardown),
/// `initiator.NIC` (Put), `target.NIC` (Deliver), `target.Wait`.
pub fn decompose_pingpong(
    log: &[LogRecord],
    initiator: u32,
    target: u32,
    cfg: &ClusterConfig,
) -> Trace {
    let mut trace = Trace::new();
    let find = |node: u32, pred: &dyn Fn(&LogKind) -> bool| -> Option<SimTime> {
        log.iter()
            .find(|r| r.node == node && pred(&r.kind))
            .map(|r| r.at)
    };

    let enqueued = find(initiator, &|k| matches!(k, LogKind::KernelEnqueued));
    let dispatched = find(initiator, &|k| matches!(k, LogKind::KernelDispatched(_)));
    let done = find(initiator, &|k| matches!(k, LogKind::KernelDone { .. }));
    let teardown = SimDuration::from_ns(cfg.gpu.teardown_ns);

    if let (Some(enq), Some(disp), Some(done)) = (enqueued, dispatched, done) {
        let exec_end = done - teardown;
        trace.span("initiator.GPU", "Launch", enq, disp);
        trace.span("initiator.GPU", "Kernel", disp, exec_end);
        trace.span("initiator.GPU", "Teardown", exec_end, done);
    }

    // CPU send (HDN): the doorbell that carries the payload put. Under
    // GDS/GPU-TN the doorbell is the pre-post, which we label separately.
    if let Some(bell) = find(initiator, &|k| matches!(k, LogKind::DoorbellRung)) {
        let stack = SimDuration::from_ns(cfg.host.send_stack_ns);
        let start = if bell >= SimTime::ZERO + stack {
            bell - stack
        } else {
            SimTime::ZERO
        };
        trace.span("initiator.CPU", "Post", start, bell);
    }
    if let Some(trig) = find(initiator, &|k| matches!(k, LogKind::TriggerWrite(_))) {
        trace.mark("initiator.GPU", "trigger", trig);
    }

    // NIC put: DMA completion (injection) through target commit.
    let dma = find(initiator, &|k| matches!(k, LogKind::PutDmaDone));
    let arrived = find(target, &|k| matches!(k, LogKind::MessageArrived));
    let committed = find(target, &|k| matches!(k, LogKind::MessageCommitted));
    if let (Some(dma), Some(committed)) = (dma, committed) {
        trace.span("initiator.NIC", "Put", dma, committed);
    }
    if let (Some(dma), Some(arrived)) = (dma, arrived) {
        // The interconnect's share of the put, as its own lane so the
        // Chrome export separates NIC processing from wire time.
        trace.span("fabric", "Wire", dma, arrived);
    }
    if let (Some(arrived), Some(committed)) = (arrived, committed) {
        trace.span("target.NIC", "Deliver", arrived, committed);
        trace.span("target.CPU", "Wait", SimTime::ZERO, committed);
    }
    trace
}

/// The Fig. 8 stage names, in pipeline order. Every decomposition reported
/// by [`stage_breakdown`] (and the `stages` object of `BENCH_*.json`) uses
/// exactly these keys; see EXPERIMENTS.md for their definitions.
pub const STAGE_NAMES: [&str; 6] = [
    "post",
    "trigger_wait",
    "injection",
    "wire",
    "commit",
    "cq_poll",
];

/// Decompose a single-message experiment into per-stage durations from the
/// activity log milestones:
///
/// - `post` — experiment start to the initiator's NIC doorbell (host
///   send/post stack; under the CPU strategy this includes the kernel the
///   send waits behind).
/// - `trigger_wait` — doorbell to the last trigger write on the initiator
///   (time the armed entry waited for the GPU; zero for untriggered sends).
/// - `injection` — trigger (or doorbell) to DMA-read completion: command
///   processing, trigger-list match, and payload DMA.
/// - `wire` — injection to last-packet arrival at the target NIC.
/// - `commit` — arrival to payload + flags visible in target memory.
/// - `cq_poll` — commit to the target host program observing it.
///
/// When the target NIC parked commits on a full bounded completion queue
/// (any [`LogKind::CqStalled`] records), an extra `cq_stall` stage is
/// inserted before `cq_poll` carrying the total parked time, and `cq_poll`
/// shrinks by the same amount so the stages still tile the end-to-end
/// path. Unpressured runs report exactly the six [`STAGE_NAMES`] pairs.
///
/// Stages whose milestones are missing from the log report zero. Returns
/// `(stage, duration)` pairs in [`STAGE_NAMES`] order.
pub fn stage_breakdown(
    log: &[LogRecord],
    initiator: u32,
    target: u32,
) -> Vec<(&'static str, SimDuration)> {
    let find = |node: u32, pred: &dyn Fn(&LogKind) -> bool| -> Option<SimTime> {
        log.iter()
            .find(|r| r.node == node && pred(&r.kind))
            .map(|r| r.at)
    };
    // Last trigger write: GPU-TN fires mid-kernel after the pre-post's own
    // registration; the final write is the one that met the threshold.
    let trig = log
        .iter()
        .filter(|r| r.node == initiator && matches!(r.kind, LogKind::TriggerWrite(_)))
        .map(|r| r.at)
        .max();
    let bell = find(initiator, &|k| matches!(k, LogKind::DoorbellRung));
    let inject = find(initiator, &|k| matches!(k, LogKind::PutDmaDone));
    let arrive = find(target, &|k| matches!(k, LogKind::MessageArrived));
    let commit = find(target, &|k| matches!(k, LogKind::MessageCommitted));
    let finish = find(target, &|k| matches!(k, LogKind::CpuFinished));

    // Gap between two optional milestones, zero when either is missing or
    // the log's ordering surprises us (e.g. a doorbell after the trigger
    // under relaxed sync).
    let gap = |a: Option<SimTime>, b: Option<SimTime>| -> SimDuration {
        match (a, b) {
            (Some(a), Some(b)) if b >= a => b - a,
            _ => SimDuration::ZERO,
        }
    };
    let start = Some(SimTime::ZERO);
    // The injection stage begins at whichever enabling action came last.
    let armed = match (bell, trig) {
        (Some(b), Some(t)) => Some(b.max(t)),
        (b, t) => b.or(t),
    };
    let mut stages = vec![
        ("post", gap(start, bell)),
        ("trigger_wait", gap(bell, trig)),
        ("injection", gap(armed, inject)),
        ("wire", gap(inject, arrive)),
        ("commit", gap(arrive, commit)),
        ("cq_poll", gap(commit, finish)),
    ];
    // CQ backpressure on the target: time commits sat parked on a full
    // bounded completion queue. That wait lives inside the commit→finish
    // window, so carve it out of cq_poll (capped so the tiling invariant
    // survives even if stalls overlap the poll gap oddly) as its own stage.
    let stalled_ps: u64 = log
        .iter()
        .filter(|r| r.node == target)
        .filter_map(|r| match r.kind {
            LogKind::CqStalled { waited_ps } => Some(waited_ps),
            _ => None,
        })
        .sum();
    if stalled_ps > 0 {
        let poll = &mut stages[5].1;
        let stall = SimDuration::from_ps(stalled_ps).min(*poll);
        *poll -= stall;
        stages.insert(5, ("cq_stall", stall));
    }
    stages
}

/// Render the decomposition as Fig. 8-style rows: one line per lane/phase
/// with absolute start and duration in microseconds.
pub fn phase_table(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:<10} {:>10} {:>10}",
        "lane", "phase", "start_us", "dur_us"
    );
    for s in trace.spans() {
        let _ = writeln!(
            out,
            "{:<16} {:<10} {:>10.3} {:>10.3}",
            s.lane,
            s.label,
            s.start.as_us_f64(),
            s.duration().as_us_f64()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ns: u64, node: u32, kind: LogKind) -> LogRecord {
        LogRecord {
            at: SimTime::from_ns(at_ns),
            node,
            kind,
        }
    }

    fn sample_log() -> Vec<LogRecord> {
        vec![
            rec(150, 0, LogKind::DoorbellRung),
            rec(300, 0, LogKind::KernelEnqueued),
            rec(1_800, 0, LogKind::KernelDispatched(0)),
            rec(2_250, 0, LogKind::TriggerWrite(1)),
            rec(2_500, 0, LogKind::PutDmaDone),
            rec(2_900, 1, LogKind::MessageArrived),
            rec(3_000, 1, LogKind::MessageCommitted),
            rec(
                3_790,
                0,
                LogKind::KernelDone {
                    kid: 0,
                    label: "k".into(),
                },
            ),
        ]
    }

    #[test]
    fn decomposition_builds_gpu_phases() {
        let cfg = ClusterConfig::table2(2);
        let t = decompose_pingpong(&sample_log(), 0, 1, &cfg);
        let launch = t.find("initiator.GPU", "Launch").unwrap();
        assert_eq!(launch.start, SimTime::from_ns(300));
        assert_eq!(launch.end, SimTime::from_ns(1_800));
        let kernel = t.find("initiator.GPU", "Kernel").unwrap();
        assert_eq!(kernel.end, SimTime::from_ns(3_790 - 1_500));
        let td = t.find("initiator.GPU", "Teardown").unwrap();
        assert_eq!(td.duration(), SimDuration::from_ns(1_500));
        let put = t.find("initiator.NIC", "Put").unwrap();
        assert_eq!(put.start, SimTime::from_ns(2_500));
        assert_eq!(put.end, SimTime::from_ns(3_000));
        assert!(t.find("target.NIC", "Deliver").is_some());
        assert!(t.find("target.CPU", "Wait").is_some());
    }

    #[test]
    fn phase_table_lists_all_spans() {
        let cfg = ClusterConfig::table2(2);
        let t = decompose_pingpong(&sample_log(), 0, 1, &cfg);
        let table = phase_table(&t);
        for needle in ["Launch", "Kernel", "Teardown", "Put", "Deliver", "Wait"] {
            assert!(table.contains(needle), "missing {needle}:\n{table}");
        }
    }

    #[test]
    fn stage_breakdown_covers_the_pipeline() {
        let mut log = sample_log();
        log.push(rec(3_200, 1, LogKind::CpuFinished));
        let stages = stage_breakdown(&log, 0, 1);
        let names: Vec<&str> = stages.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, STAGE_NAMES.to_vec());
        let get = |name: &str| {
            stages
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| *d)
                .unwrap()
        };
        assert_eq!(get("post"), SimDuration::from_ns(150));
        assert_eq!(get("trigger_wait"), SimDuration::from_ns(2_250 - 150));
        assert_eq!(get("injection"), SimDuration::from_ns(2_500 - 2_250));
        assert_eq!(get("wire"), SimDuration::from_ns(400));
        assert_eq!(get("commit"), SimDuration::from_ns(100));
        assert_eq!(get("cq_poll"), SimDuration::from_ns(200));
        // The stages tile the end-to-end path exactly.
        let total: SimDuration = stages.iter().map(|(_, d)| *d).sum();
        assert_eq!(total, SimDuration::from_ns(3_200));
    }

    #[test]
    fn cq_stall_records_carve_a_stage_out_of_cq_poll() {
        let mut log = sample_log();
        log.push(rec(
            3_050,
            1,
            LogKind::CqStalled {
                waited_ps: SimDuration::from_ns(120).as_ps(),
            },
        ));
        log.push(rec(3_200, 1, LogKind::CpuFinished));
        let stages = stage_breakdown(&log, 0, 1);
        let names: Vec<&str> = stages.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "post",
                "trigger_wait",
                "injection",
                "wire",
                "commit",
                "cq_stall",
                "cq_poll"
            ]
        );
        let get = |name: &str| {
            stages
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| *d)
                .unwrap()
        };
        assert_eq!(get("cq_stall"), SimDuration::from_ns(120));
        assert_eq!(get("cq_poll"), SimDuration::from_ns(80));
        // The extra stage preserves the exact tiling of the pipeline.
        let total: SimDuration = stages.iter().map(|(_, d)| *d).sum();
        assert_eq!(total, SimDuration::from_ns(3_200));
    }

    #[test]
    fn stage_breakdown_of_empty_log_is_all_zero() {
        let stages = stage_breakdown(&[], 0, 1);
        assert_eq!(stages.len(), STAGE_NAMES.len());
        assert!(stages.iter().all(|(_, d)| *d == SimDuration::ZERO));
    }

    #[test]
    fn decomposition_includes_fabric_wire_lane() {
        let cfg = ClusterConfig::table2(2);
        let t = decompose_pingpong(&sample_log(), 0, 1, &cfg);
        let wire = t.find("fabric", "Wire").unwrap();
        assert_eq!(wire.start, SimTime::from_ns(2_500));
        assert_eq!(wire.end, SimTime::from_ns(2_900));
    }

    #[test]
    fn partial_logs_degrade_gracefully() {
        let cfg = ClusterConfig::table2(2);
        let t = decompose_pingpong(&[], 0, 1, &cfg);
        assert!(t.spans().is_empty());
        let t = decompose_pingpong(&[rec(100, 0, LogKind::KernelEnqueued)], 0, 1, &cfg);
        assert!(t.find("initiator.GPU", "Launch").is_none());
    }
}
