//! The Fig. 6 host-side API.
//!
//! The paper's host pseudocode:
//!
//! ```c
//! int rank = RdmaInit();                         // 1
//! for (i = 0; i < N_MSGS; i++)
//!     TrigPut(TAG + i, buf, target, thresh, ...) // 2
//! char *trigAddr = GetTriggerAddr();             // 3
//! LaunchKern(trigAddr, TAG, N_MSGS, buf, ...);   // 4
//! // cleanup, more compute, ...                  // 5
//! ```
//!
//! [`HostApi`] mirrors those calls one-to-one onto a [`HostProgram`]. The
//! trigger address itself is implicit in the simulation (kernel-side
//! [`gtn_gpu::kernel::KernelOp::TriggerStore`]s route to the local NIC), so
//! `get_trigger_addr` exists for fidelity and documentation: it marks the
//! point where a real runtime would extract the MMIO address to pass as a
//! kernel argument.

use gtn_gpu::KernelLaunch;
use gtn_host::{HostOp, HostProgram};
use gtn_mem::{Addr, NodeId};
use gtn_nic::nic::NicCommand;
use gtn_nic::op::{NetOp, Notify};
use gtn_nic::Tag;

/// Fluent builder for GPU-TN host programs, named after Fig. 6.
#[derive(Debug)]
pub struct HostApi {
    rank: NodeId,
    program: HostProgram,
    posts: u32,
    got_trigger_addr: bool,
}

impl HostApi {
    /// Step 1 — `RdmaInit()`: bind this program to its rank. (Buffer
    /// allocation happens against the shared [`gtn_mem::MemPool`] before
    /// cluster construction, mirroring `malloc` + registration.)
    pub fn rdma_init(rank: NodeId) -> Self {
        HostApi {
            rank,
            program: HostProgram::new(),
            posts: 0,
            got_trigger_addr: false,
        }
    }

    /// This program's rank.
    pub fn rank(&self) -> NodeId {
        self.rank
    }

    /// Step 2 — `TrigPut(tag, buf, target, thresh, ...)`: register a
    /// triggered put with the NIC. `notify` is the target-side flag
    /// (§4.2.5); `completion` the local-completion flag (§4.2.4).
    #[allow(clippy::too_many_arguments)]
    pub fn trig_put(
        mut self,
        tag: Tag,
        buf: Addr,
        len: u64,
        target: NodeId,
        dst: Addr,
        thresh: u64,
        notify: Option<Notify>,
        completion: Option<Addr>,
    ) -> Self {
        self.posts += 1;
        self.program.nic_post(NicCommand::TriggeredPut {
            tag,
            threshold: thresh,
            op: NetOp::Put {
                src: buf,
                len,
                target,
                dst,
                notify,
                completion,
            },
        });
        self
    }

    /// Step 3 — `GetTriggerAddr()`: in the simulation the trigger address
    /// is implicit; this records that the runtime handed it to the
    /// application (and lets tests assert API order).
    pub fn get_trigger_addr(mut self) -> Self {
        self.got_trigger_addr = true;
        self
    }

    /// Step 4 — `LaunchKern(trigAddr, TAG, ...)` followed by a wait for its
    /// completion.
    pub fn launch_kern(mut self, launch: KernelLaunch) -> Self {
        let label = launch.label.clone();
        self.program.launch(launch).wait_kernel(&label);
        self
    }

    /// Step 4 without the wait — used when the host overlaps the post with
    /// the kernel (§4.1: "steps 2 and 4 do not need to occur in the order
    /// presented").
    pub fn launch_kern_async(mut self, launch: KernelLaunch) -> Self {
        self.program.launch(launch);
        self
    }

    /// Wait for a previously async-launched kernel.
    pub fn wait_kern(mut self, label: &str) -> Self {
        self.program.wait_kernel(label);
        self
    }

    /// Step 5 — cleanup / extra computation.
    pub fn compute(mut self, d: gtn_sim::time::SimDuration) -> Self {
        self.program.compute(d);
        self
    }

    /// Append an arbitrary host op (escape hatch for workloads).
    pub fn raw(mut self, op: HostOp) -> Self {
        self.program.push(op);
        self
    }

    /// Number of `TrigPut` calls so far.
    pub fn posts(&self) -> u32 {
        self.posts
    }

    /// Finish: the executable host program.
    pub fn build(self) -> HostProgram {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtn_gpu::kernel::ProgramBuilder;
    use gtn_mem::RegionId;

    #[test]
    fn fig6_sequence_builds_expected_ops() {
        let buf = Addr::base(NodeId(0), RegionId(0));
        let dst = Addr::base(NodeId(1), RegionId(0));
        let kernel = ProgramBuilder::new().build().unwrap();
        let api = HostApi::rdma_init(NodeId(0));
        assert_eq!(api.rank(), NodeId(0));
        let program = api
            .trig_put(Tag(10), buf, 64, NodeId(1), dst, 1, None, None)
            .trig_put(Tag(11), buf, 64, NodeId(1), dst, 1, None, None)
            .get_trigger_addr()
            .launch_kern(KernelLaunch::new(kernel, 1, 64, "k"))
            .compute(gtn_sim::time::SimDuration::from_ns(10))
            .build();
        // 2 posts + launch + wait + compute.
        assert_eq!(program.len(), 5);
        assert!(matches!(program.ops()[0], HostOp::NicPost(_)));
        assert!(matches!(program.ops()[2], HostOp::LaunchKernel(_)));
        assert!(matches!(program.ops()[3], HostOp::WaitKernel(_)));
    }

    #[test]
    fn async_launch_allows_post_after_kernel() {
        // §4.1 overlap: launch first, post later, wait last.
        let buf = Addr::base(NodeId(0), RegionId(0));
        let dst = Addr::base(NodeId(1), RegionId(0));
        let kernel = ProgramBuilder::new().build().unwrap();
        let program = HostApi::rdma_init(NodeId(0))
            .launch_kern_async(KernelLaunch::new(kernel, 1, 64, "k"))
            .trig_put(Tag(1), buf, 8, NodeId(1), dst, 1, None, None)
            .wait_kern("k")
            .build();
        assert!(matches!(program.ops()[0], HostOp::LaunchKernel(_)));
        assert!(matches!(program.ops()[1], HostOp::NicPost(_)));
        assert!(matches!(program.ops()[2], HostOp::WaitKernel(_)));
    }

    #[test]
    fn post_counter_tracks_trig_puts() {
        let buf = Addr::base(NodeId(0), RegionId(0));
        let api = HostApi::rdma_init(NodeId(0))
            .trig_put(Tag(0), buf, 8, NodeId(0), buf, 1, None, None)
            .trig_put(Tag(1), buf, 8, NodeId(0), buf, 2, None, None);
        assert_eq!(api.posts(), 2);
    }
}
