//! Dynamic communication (§3.4 future-work extension) in action: a kernel
//! inspects its data and picks the **destination node at runtime**,
//! something base GPU-TN cannot express because all networking metadata is
//! fixed by the CPU.
//!
//! Scenario: node 0 classifies 4 work-group results; each work-group ships
//! its result to the node responsible for its value range — a dynamic
//! scatter. The CPU registers *template* puts; the kernel's dynamic
//! trigger stores override the target (and destination buffer) per
//! work-group.
//!
//! Run with: `cargo run --example dynamic_scatter`

use gpu_tn::core::cluster::Cluster;
use gpu_tn::core::config::ClusterConfig;
use gpu_tn::gpu::kernel::ProgramBuilder;
use gpu_tn::gpu::KernelLaunch;
use gpu_tn::host::HostProgram;
use gpu_tn::mem::scope::{MemOrdering, MemScope};
use gpu_tn::mem::{Addr, MemPool, NodeId};
use gpu_tn::nic::dynamic::DynFields;
use gpu_tn::nic::lookup::LookupKind;
use gpu_tn::nic::nic::NicCommand;
use gpu_tn::nic::op::{NetOp, Notify};
use gpu_tn::nic::Tag;
use gpu_tn::sim::time::SimDuration;

const WGS: u32 = 4;
const CHUNK: u64 = 64;

fn main() {
    let mut config = ClusterConfig::table2(4);
    config.nic.lookup = LookupKind::HashTable;

    let mut mem = MemPool::new(4);
    let src = Addr::base(
        NodeId(0),
        mem.alloc(NodeId(0), CHUNK * WGS as u64, "results"),
    );
    // One landing buffer + flag per potential destination.
    let mut dsts = Vec::new();
    let mut flags = Vec::new();
    for node in 1..4u32 {
        dsts.push(Addr::base(
            NodeId(node),
            mem.alloc(NodeId(node), CHUNK * WGS as u64, "landing"),
        ));
        flags.push(Addr::base(NodeId(node), mem.alloc(NodeId(node), 8, "flag")));
    }
    let dsts_k = dsts.clone();

    // Work-group w produces a value whose "class" (w * 7 % 3) decides the
    // destination node 1..=3 — known only at kernel runtime.
    let class_of = |wg: u32| (wg * 7) % 3;

    let kernel = ProgramBuilder::new()
        .compute(SimDuration::from_ns(400))
        .func(move |mem, ctx| {
            let fill = (ctx.wg + 1) as u8;
            mem.write(
                src.offset_by(ctx.wg as u64 * CHUNK),
                &[fill; CHUNK as usize],
            );
        })
        .fence(MemScope::System, MemOrdering::Release)
        .barrier()
        .trigger_store_dyn(
            |ctx| Tag(ctx.wg as u64),
            move |ctx| {
                let class = class_of(ctx.wg) as usize;
                DynFields {
                    target: Some(NodeId(class as u32 + 1)),
                    src: Some(src.offset_by(ctx.wg as u64 * CHUNK)),
                    dst: Some(dsts_k[class].offset_by(ctx.wg as u64 * CHUNK)),
                    len: None,
                }
            },
        )
        .build()
        .expect("valid dynamic kernel");

    // The CPU registers templates: it knows message size and count, but
    // points them at a placeholder target the GPU will override.
    let mut p0 = HostProgram::new();
    for wg in 0..WGS {
        p0.nic_post(NicCommand::TriggeredPut {
            tag: Tag(wg as u64),
            threshold: 1,
            op: NetOp::Put {
                src,
                len: CHUNK,
                target: NodeId(1), // placeholder
                dst: dsts[0],
                notify: Some(Notify {
                    flag: flags[0], // patched implicitly via dst-node flag below
                    add: 1,
                    chain: None,
                }),
                completion: None,
            },
        });
    }
    p0.launch(KernelLaunch::new(kernel, WGS, 64, "scatter"));
    p0.wait_kernel("scatter");

    // Receivers are passive PGAS targets here (§4.2.5): delivery is
    // verified after the run drains. (The template's notify flag still
    // points at node 1; a production runtime would carry the flag in the
    // dynamic descriptor too — `DynFields` covers the §3.4 fields the
    // paper names.)
    let mut programs = vec![p0];
    for _ in 1..4u32 {
        programs.push(HostProgram::new());
    }

    let mut cluster = Cluster::new(config, mem, programs);
    let result = cluster.run();
    assert!(result.completed);

    println!("dynamic scatter complete at {}\n", result.makespan);
    for wg in 0..WGS {
        let class = class_of(wg) as usize;
        let landing = dsts[class].offset_by(wg as u64 * CHUNK);
        let got = cluster.mem().read(landing, CHUNK)[0];
        println!(
            "work-group {wg}: class {class} -> node {} : chunk[0] = {got} (expect {})",
            class + 1,
            wg + 1
        );
        assert_eq!(got, (wg + 1) as u8, "payload routed to the wrong node");
    }
    println!("\nThe CPU registered 4 template puts; the kernel picked each target at");
    println!("runtime via dynamic trigger descriptors — the §3.4 extension the paper");
    println!("left as future work.");
}
