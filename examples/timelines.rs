//! Fig. 3 / Fig. 8 as ASCII timelines: the control flow of each networking
//! strategy on the single-message microbenchmark, drawn from the actual
//! simulation trace.
//!
//! Run with: `cargo run --example timelines`

use gpu_tn::core::timeline::phase_table;
use gpu_tn::workloads::pingpong;

fn main() {
    println!("Control flow of GPU networking strategies (cf. paper Fig. 3 / Fig. 8)");
    println!("One 64 B message from node 0 (initiator) to node 1 (target).\n");
    for result in pingpong::run_all() {
        println!(
            "==== {} ==== target completes at {:.2} us (initiator kernel done {:.2} us){}",
            result.scenario.strategy.name(),
            result.target_completion.as_us_f64(),
            result.initiator_kernel_done.as_us_f64(),
            if result.delivered_intra_kernel() {
                "  << intra-kernel delivery"
            } else {
                ""
            }
        );
        print!("{}", result.trace.render_gantt(72));
        print!("{}", phase_table(&result.trace));
        println!();
    }
    println!("Note how only GPU-TN's Put overlaps the initiator's kernel/teardown:");
    println!("\"a kernel can initiate a network operation whenever the data is ready\" (§5.2).");
}
