//! Ring Allreduce strong scaling (the Fig. 10 workload) at a configurable
//! payload: watch HDN fall behind the CPU baseline as chunks shrink while
//! GPU-TN keeps its lead — the paper's headline scaling result.
//!
//! Run with: `cargo run --release --example allreduce_scaling [MiB]`

use gpu_tn::core::Strategy;
use gpu_tn::workloads::allreduce::{reference, run, AllreduceParams};

fn main() {
    let mib: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("MiB must be an integer"))
        .unwrap_or(1);
    let elems = mib * 1024 * 1024 / 4;
    let seed = 0x5EED;

    println!("Ring Allreduce of {mib} MiB (f32 sum), speedup vs CPU:\n");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>14}",
        "nodes", "HDN", "GDS", "GPU-TN", "CPU us"
    );
    for nodes in [2u32, 4, 8, 16, 24, 32] {
        let expect = reference(nodes, elems, seed);
        let cpu = run(AllreduceParams {
            nodes,
            elems,
            strategy: Strategy::Cpu,
            seed,
        });
        assert_eq!(cpu.result, expect, "CPU result wrong at P={nodes}");
        print!("{nodes:<8}");
        for strategy in [Strategy::Hdn, Strategy::Gds, Strategy::GpuTn] {
            let r = run(AllreduceParams {
                nodes,
                elems,
                strategy,
                seed,
            });
            assert_eq!(r.result, expect, "{strategy} result wrong at P={nodes}");
            print!(
                "{:>10.3}",
                cpu.scenario.total.as_ns_f64() / r.scenario.total.as_ns_f64()
            );
        }
        println!("{:>14.1}", cpu.scenario.total.as_us_f64());
    }
    println!("\nAll reductions verified bit-exact against the ring-order reference sum.");
    println!("Values > 1.0 beat the CPU collective; HDN sinks below 1.0 first (Fig. 10).");
}
