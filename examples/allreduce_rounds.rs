//! Fig. 2, concretely: the round structure of the ring Allreduce.
//!
//! The paper's Fig. 2 sketches data circulating around a GPU ring with a
//! compute step per round. This example prints the actual libNBC-style
//! schedule for a chosen rank and then runs the collective under GPU-TN,
//! verifying the final vector.
//!
//! Run with: `cargo run --example allreduce_rounds [nodes]`

use gpu_tn::core::Strategy;
use gpu_tn::host::nbc::{chunk_range, ring_allreduce, NbcOp};
use gpu_tn::workloads::allreduce::{reference, run, AllreduceParams};

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("nodes must be an integer"))
        .unwrap_or(4);
    let elems: u64 = 4096;

    println!("Ring Allreduce schedule, rank 0 of {nodes} (cf. paper Fig. 2):\n");
    let schedule = ring_allreduce(0, nodes);
    for (r, round) in schedule.rounds.iter().enumerate() {
        let phase = if r < (nodes - 1) as usize {
            "reduce-scatter"
        } else {
            "allgather"
        };
        print!("round {r:>2} [{phase:<14}] ");
        for op in &round.0 {
            match op {
                NbcOp::Send { peer, chunk } => {
                    let (_, len) = chunk_range(*chunk, elems, nodes);
                    print!("send chunk{chunk}({len} elems) -> rank{peer}   ");
                }
                NbcOp::Recv { peer, chunk } => print!("recv chunk{chunk} <- rank{peer}   "),
                NbcOp::Reduce { chunk } => print!("reduce chunk{chunk}"),
                NbcOp::Replace { chunk } => print!("commit chunk{chunk}"),
            }
        }
        println!();
    }

    println!(
        "\nrunning it under GPU-TN (one persistent kernel, {} rounds)...",
        schedule.rounds.len()
    );
    let r = run(AllreduceParams {
        nodes,
        elems,
        strategy: Strategy::GpuTn,
        seed: 0xF162,
    });
    assert_eq!(r.result, reference(nodes, elems, 0xF162));
    println!(
        "complete in {} — result verified bit-exact against the ring-order sum.",
        r.scenario.total
    );
    println!("\nEvery round's send is a pre-registered triggered put fired from inside");
    println!("the kernel; every round's wait is an intra-kernel poll (S5.4.1).");
}
