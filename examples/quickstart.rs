//! Quickstart: the Fig. 6 / Fig. 7 flow end to end.
//!
//! Host side (Fig. 6): initialize, pre-register a triggered put with the
//! NIC, launch the kernel. Kernel side (Fig. 7b): do work, release-fence at
//! system scope, have the work-group leader store the tag to the NIC's
//! trigger address. The NIC fires the pre-built put mid-kernel; the target
//! polls a notification flag.
//!
//! Run with: `cargo run --example quickstart`

use gpu_tn::core::cluster::{Cluster, LogKind};
use gpu_tn::core::config::ClusterConfig;
use gpu_tn::core::host_api::HostApi;
use gpu_tn::gpu::kernel::ProgramBuilder;
use gpu_tn::gpu::KernelLaunch;
use gpu_tn::host::HostProgram;
use gpu_tn::mem::scope::{MemOrdering, MemScope};
use gpu_tn::mem::{Addr, MemPool, NodeId};
use gpu_tn::nic::op::Notify;
use gpu_tn::nic::Tag;
use gpu_tn::sim::time::SimDuration;

fn main() {
    // A two-node Table 2 cluster: each node is a coherent CPU+GPU+NIC SoC.
    let config = ClusterConfig::table2(2);

    // Allocate buffers in the shared simulated memory (the runtime's
    // malloc + RDMA registration).
    let mut mem = MemPool::new(2);
    let send_buf = Addr::base(NodeId(0), mem.alloc(NodeId(0), 256, "send"));
    let recv_buf = Addr::base(NodeId(1), mem.alloc(NodeId(1), 256, "recv"));
    let flag = Addr::base(NodeId(1), mem.alloc(NodeId(1), 8, "flag"));

    // Kernel (Fig. 7b): fill the buffer, release to system scope, leader
    // work-item triggers the NIC.
    let kernel = ProgramBuilder::new()
        .compute(SimDuration::from_ns(500))
        .func(move |mem, _| {
            let payload: Vec<u8> = (0..256u32).map(|i| (i * 7) as u8).collect();
            mem.write(send_buf, &payload);
        })
        .fence(MemScope::System, MemOrdering::Release)
        .barrier()
        .trigger_store(|_| Tag(42))
        .build()
        .expect("kernel obeys the scoped-memory discipline");

    // Host (Fig. 6): RdmaInit -> TrigPut -> GetTriggerAddr -> LaunchKern.
    let initiator = HostApi::rdma_init(NodeId(0))
        .trig_put(
            Tag(42),
            send_buf,
            256,
            NodeId(1),
            recv_buf,
            1, // threshold: one trigger write fires the put
            Some(Notify {
                flag,
                add: 1,
                chain: None,
            }),
            None,
        )
        .get_trigger_addr()
        .launch_kern(KernelLaunch::new(kernel, 1, 64, "quickstart"))
        .build();

    // Target: PGAS-style polling on the notification flag (§4.2.5).
    let mut target = HostProgram::new();
    target.poll(flag, 1);

    let mut cluster = Cluster::new(config, mem, vec![initiator, target]);
    let result = cluster.run();
    assert!(result.completed);

    let expect: Vec<u8> = (0..256u32).map(|i| (i * 7) as u8).collect();
    assert_eq!(cluster.mem().read(recv_buf, 256), &expect[..]);

    let commit = cluster
        .log()
        .iter()
        .find(|r| r.kind == LogKind::MessageCommitted)
        .unwrap()
        .at;
    let kernel_done = cluster
        .log()
        .iter()
        .find_map(|r| match &r.kind {
            LogKind::KernelDone { .. } => Some(r.at),
            _ => None,
        })
        .unwrap();

    println!("payload delivered and verified: 256 bytes");
    println!("target completion:      {commit}");
    println!("initiator kernel done:  {kernel_done}");
    println!(
        "delivered {} the kernel boundary — the GPU-TN effect (Fig. 8)",
        if commit < kernel_done {
            "BEFORE"
        } else {
            "after"
        }
    );
    println!("\ncluster memory map:\n{}", cluster.mem().memory_map());
}
