//! Distributed 2-D Jacobi relaxation on a 2×2 GPU cluster (the Fig. 9
//! workload), run under all four networking strategies with functional
//! verification against the sequential reference.
//!
//! Run with: `cargo run --release --example jacobi_cluster [N] [iters]`

use gpu_tn::core::Strategy;
use gpu_tn::workloads::jacobi::{reference, run, JacobiParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args
        .next()
        .map(|s| s.parse().expect("N must be an integer"))
        .unwrap_or(64);
    let iters: u32 = args
        .next()
        .map(|s| s.parse().expect("iters must be an integer"))
        .unwrap_or(5);
    let seed = 0xD00D;

    println!("2-D Jacobi: 4 nodes (2x2), {n}x{n} local grid, {iters} iterations\n");
    let expect = reference(2, 2, n, iters, seed);

    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>10}",
        "strategy", "total_us", "us/iter", "vs HDN", "verified"
    );
    let hdn_per_iter = run(JacobiParams {
        rows: 2,
        cols: 2,
        n_local: n,
        iters,
        strategy: Strategy::Hdn,
        seed,
    })
    .scenario
    .per_iter;
    for strategy in Strategy::all() {
        let r = run(JacobiParams {
            rows: 2,
            cols: 2,
            n_local: n,
            iters,
            strategy,
            seed,
        });
        let ok = r.interiors == expect;
        println!(
            "{:<8} {:>14.2} {:>14.2} {:>12.3} {:>10}",
            strategy.name(),
            r.scenario.total.as_us_f64(),
            r.scenario.per_iter.as_us_f64(),
            hdn_per_iter.as_ns_f64() / r.scenario.per_iter.as_ns_f64(),
            if ok { "bit-exact" } else { "MISMATCH" }
        );
        assert!(ok, "{strategy} diverged from the sequential reference");
    }
    println!("\nEvery strategy computed the identical stencil — only the communication");
    println!("path differs. GPU-TN runs the whole thing in one persistent kernel.");
}
