//! Cross-crate integration: full workloads through the facade, verifying
//! functional results (the simulator computes real data) and the paper's
//! qualitative orderings.

use gpu_tn::core::Strategy;
use gpu_tn::workloads::{allreduce, jacobi};

#[test]
fn jacobi_all_strategies_agree_with_reference() {
    let expect = jacobi::reference(2, 2, 12, 2, 99);
    for strategy in Strategy::all() {
        let r = jacobi::run(jacobi::JacobiParams {
            rows: 2,
            cols: 2,
            n_local: 12,
            iters: 2,
            strategy,
            seed: 99,
        });
        assert_eq!(r.interiors, expect, "{strategy}");
    }
}

#[test]
fn jacobi_gputn_is_fastest_gpu_strategy() {
    let time = |s: Strategy| {
        jacobi::run(jacobi::JacobiParams {
            rows: 2,
            cols: 2,
            n_local: 48,
            iters: 3,
            strategy: s,
            seed: 5,
        })
        .scenario
        .per_iter
    };
    let hdn = time(Strategy::Hdn);
    let gds = time(Strategy::Gds);
    let tn = time(Strategy::GpuTn);
    assert!(tn < gds && gds < hdn, "tn={tn} gds={gds} hdn={hdn}");
}

#[test]
fn allreduce_all_strategies_compute_the_exact_sum() {
    let expect = allreduce::reference(3, 600, 11);
    for strategy in Strategy::all() {
        let r = allreduce::run(allreduce::AllreduceParams {
            nodes: 3,
            elems: 600,
            strategy,
            seed: 11,
        });
        assert_eq!(r.result, expect, "{strategy}");
    }
}

#[test]
fn allreduce_fig10_shape_compressed() {
    // Strong scaling at a fixed small payload: HDN's advantage over CPU
    // decays with node count while GPU-TN's holds (the Fig. 10 shape).
    let speedup = |s: Strategy, p: u32| {
        let cpu = allreduce::run(allreduce::AllreduceParams {
            nodes: p,
            elems: 128 * 1024,
            strategy: Strategy::Cpu,
            seed: 2,
        })
        .scenario
        .total;
        let t = allreduce::run(allreduce::AllreduceParams {
            nodes: p,
            elems: 128 * 1024,
            strategy: s,
            seed: 2,
        })
        .scenario
        .total;
        cpu.as_ns_f64() / t.as_ns_f64()
    };
    let hdn_small = speedup(Strategy::Hdn, 2);
    let hdn_large = speedup(Strategy::Hdn, 12);
    assert!(
        hdn_large < hdn_small,
        "HDN decays: {hdn_small} -> {hdn_large}"
    );
    let tn_large = speedup(Strategy::GpuTn, 12);
    assert!(
        tn_large > hdn_large,
        "GPU-TN holds: {tn_large} vs {hdn_large}"
    );
    assert!(tn_large > 1.0);
}

#[test]
fn nic_trigger_lists_stay_clean_across_workloads() {
    // After a complete GPU-TN run every registered trigger fired: no
    // leaked entries, no errors — on every node.
    let p = 4;
    let r = allreduce::run(allreduce::AllreduceParams {
        nodes: p,
        elems: 4096,
        strategy: Strategy::GpuTn,
        seed: 8,
    });
    assert_eq!(r.scenario.nodes, p);
    // (The run itself asserts completion; trigger hygiene is checked in
    // the workload via deadlock-freedom. Here we re-verify the result.)
    assert_eq!(r.result, allreduce::reference(p, 4096, 8));
}
