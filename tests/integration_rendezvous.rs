//! End-to-end rendezvous-protocol test through the full cluster: a
//! message larger than the eager slot travels RTS → CTS → zero-copy
//! payload put, and the payload lands bit-exact in the receiver's user
//! buffer with no intermediate mailbox copy.

use gpu_tn::core::cluster::Cluster;
use gpu_tn::core::config::ClusterConfig;
use gpu_tn::host::mpi::MpiWorld;
use gpu_tn::host::{HostConfig, HostProgram};
use gpu_tn::mem::{Addr, MemPool, NodeId};
use gpu_tn::sim::time::SimTime;

const EAGER_SLOT: u64 = 1024;

fn run_transfer(bytes: u64) -> (Vec<u8>, Vec<u8>, SimTime) {
    let config = ClusterConfig::table2(2);
    let mut mem = MemPool::new(2);
    let send_buf = Addr::base(NodeId(0), mem.alloc(NodeId(0), bytes, "send"));
    let recv_buf = Addr::base(NodeId(1), mem.alloc(NodeId(1), bytes, "recv"));
    let payload: Vec<u8> = (0..bytes).map(|i| (i * 31 % 251) as u8).collect();
    mem.write(send_buf, &payload);

    let mut mpi = MpiWorld::new(&mut mem, 2, EAGER_SLOT);
    let mut p0 = HostProgram::new();
    p0.extend(mpi.send_ops(NodeId(0), NodeId(1), send_buf, bytes));
    let mut p1 = HostProgram::new();
    p1.extend(mpi.recv_ops(
        &HostConfig::default(),
        NodeId(0),
        NodeId(1),
        recv_buf,
        bytes,
    ));

    let mut cluster = Cluster::new(config, mem, vec![p0, p1]);
    let result = cluster.run();
    assert!(
        result.completed,
        "transfer of {bytes} B deadlocked: {result:?}"
    );
    let received = cluster.mem().read(recv_buf, bytes).to_vec();
    (payload, received, result.makespan)
}

#[test]
fn eager_path_below_threshold() {
    let (sent, received, t) = run_transfer(EAGER_SLOT);
    assert_eq!(sent, received);
    assert!(t < SimTime::from_us(5), "{t}");
}

#[test]
fn rendezvous_path_above_threshold() {
    let (sent, received, _) = run_transfer(EAGER_SLOT + 1);
    assert_eq!(sent, received, "rendezvous corrupted the payload");
    let (sent, received, _) = run_transfer(64 * 1024);
    assert_eq!(sent, received);
}

#[test]
fn rendezvous_costs_a_round_trip_but_skips_the_copy() {
    // At sizes just around the threshold, rendezvous pays RTS+CTS wire
    // time; at large sizes it wins by skipping the mailbox memcpy.
    let (_, _, t_eager_1k) = run_transfer(EAGER_SLOT);
    let (_, _, t_rdv_1k) = run_transfer(EAGER_SLOT + 4);
    assert!(
        t_rdv_1k > t_eager_1k,
        "tiny rendezvous should pay the handshake: {t_rdv_1k} vs {t_eager_1k}"
    );

    // Compare a large transfer against an eager world with huge slots
    // (i.e. forced eager at the same size): rendezvous must win on the
    // avoided copy.
    let bytes = 1 << 20;
    let (_, _, t_rdv) = run_transfer(bytes);
    let t_forced_eager = {
        let config = ClusterConfig::table2(2);
        let mut mem = MemPool::new(2);
        let send_buf = Addr::base(NodeId(0), mem.alloc(NodeId(0), bytes, "send"));
        let recv_buf = Addr::base(NodeId(1), mem.alloc(NodeId(1), bytes, "recv"));
        mem.write(send_buf, &vec![9u8; bytes as usize]);
        let mut mpi = MpiWorld::new(&mut mem, 2, bytes); // slots big enough
        let mut p0 = HostProgram::new();
        p0.extend(mpi.send_ops(NodeId(0), NodeId(1), send_buf, bytes));
        let mut p1 = HostProgram::new();
        p1.extend(mpi.recv_ops(
            &HostConfig::default(),
            NodeId(0),
            NodeId(1),
            recv_buf,
            bytes,
        ));
        let mut cluster = Cluster::new(config, mem, vec![p0, p1]);
        cluster.run().expect_completed()
    };
    assert!(
        t_rdv < t_forced_eager,
        "1 MiB: rendezvous {t_rdv} should beat eager-with-copy {t_forced_eager}"
    );
}

#[test]
fn pipelined_rendezvous_messages_stay_ordered() {
    // Several large messages back to back on one channel: sequences and
    // CTS slots must not collide.
    let config = ClusterConfig::table2(2);
    let mut mem = MemPool::new(2);
    let n_msgs = 6u64;
    let bytes = 8 * 1024u64;
    let send_buf = Addr::base(NodeId(0), mem.alloc(NodeId(0), bytes * n_msgs, "send"));
    let recv_buf = Addr::base(NodeId(1), mem.alloc(NodeId(1), bytes * n_msgs, "recv"));
    for i in 0..n_msgs {
        let fill = vec![(i + 1) as u8; bytes as usize];
        mem.write(send_buf.offset_by(i * bytes), &fill);
    }
    let mut mpi = MpiWorld::new(&mut mem, 2, 1024);
    let mut p0 = HostProgram::new();
    let mut p1 = HostProgram::new();
    for i in 0..n_msgs {
        p0.extend(mpi.send_ops(NodeId(0), NodeId(1), send_buf.offset_by(i * bytes), bytes));
        p1.extend(mpi.recv_ops(
            &HostConfig::default(),
            NodeId(0),
            NodeId(1),
            recv_buf.offset_by(i * bytes),
            bytes,
        ));
    }
    let mut cluster = Cluster::new(config, mem, vec![p0, p1]);
    cluster.run().expect_completed();
    for i in 0..n_msgs {
        assert_eq!(
            cluster.mem().read(recv_buf.offset_by(i * bytes), bytes),
            &vec![(i + 1) as u8; bytes as usize][..],
            "message {i} corrupted"
        );
    }
}
