//! Workspace-level property tests: functional invariants of the full
//! stack under randomized geometry.

use gpu_tn::core::Strategy;
use gpu_tn::workloads::{allreduce, jacobi};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (nodes, elems) geometry yields the exact ring-order sum, and
    /// every strategy agrees — including ragged chunk splits.
    #[test]
    fn allreduce_is_exact_for_any_geometry(
        nodes in 2u32..7,
        elems in 64u64..2_000,
        seed in any::<u64>(),
    ) {
        let expect = allreduce::reference(nodes, elems, seed);
        for strategy in [Strategy::Hdn, Strategy::GpuTn] {
            let r = allreduce::run(allreduce::AllreduceParams {
                nodes,
                elems,
                strategy,
                seed,
            });
            prop_assert_eq!(&r.result, &expect, "{} P={} n={}", strategy, nodes, elems);
        }
    }

    /// The distributed Jacobi equals the sequential global sweep for any
    /// grid size / iteration count / seed (bit-exact f32).
    #[test]
    fn jacobi_matches_reference_for_any_grid(
        n in 4u32..24,
        iters in 1u32..4,
        seed in any::<u64>(),
    ) {
        let expect = jacobi::reference(2, 2, n, iters, seed);
        let r = jacobi::run(jacobi::JacobiParams {
            rows: 2,
            cols: 2,
            n_local: n,
            iters,
            strategy: Strategy::GpuTn,
            seed,
        });
        prop_assert_eq!(r.interiors, expect);
    }

    /// Simulated time is deterministic: same parameters, same makespan.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>()) {
        let go = || {
            allreduce::run(allreduce::AllreduceParams {
                nodes: 3,
                elems: 512,
                strategy: Strategy::GpuTn,
                seed,
            })
            .scenario
            .total
        };
        prop_assert_eq!(go(), go());
    }
}
