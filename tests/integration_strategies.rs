//! Cross-crate integration: the four networking strategies on the
//! single-message microbenchmark, checked through the `gpu-tn` facade the
//! way a downstream user would drive it.

use gpu_tn::core::Strategy;
use gpu_tn::workloads::pingpong;

#[test]
fn strategy_ordering_matches_figure8() {
    let results = pingpong::run_all();
    let t = |s: Strategy| {
        results
            .iter()
            .find(|r| r.scenario.strategy == s)
            .unwrap()
            .target_completion
    };
    assert!(t(Strategy::GpuTn) < t(Strategy::Gds));
    assert!(t(Strategy::Gds) < t(Strategy::Hdn));
}

#[test]
fn intra_kernel_delivery_is_unique_to_gputn() {
    for r in pingpong::run_all() {
        assert_eq!(
            r.delivered_intra_kernel(),
            r.scenario.strategy == Strategy::GpuTn,
            "{}",
            r.scenario.strategy
        );
    }
}

#[test]
fn decompositions_cover_initiator_and_target() {
    for r in pingpong::run_all() {
        assert!(
            r.trace.find("initiator.GPU", "Kernel").is_some(),
            "{}",
            r.scenario.strategy
        );
        assert!(
            r.trace.find("initiator.NIC", "Put").is_some(),
            "{}",
            r.scenario.strategy
        );
        assert!(
            r.trace.find("target.NIC", "Deliver").is_some(),
            "{}",
            r.scenario.strategy
        );
        // Phases never overlap incorrectly: launch < kernel < teardown.
        let launch = r.trace.find("initiator.GPU", "Launch").unwrap();
        let kernel = r.trace.find("initiator.GPU", "Kernel").unwrap();
        let teardown = r.trace.find("initiator.GPU", "Teardown").unwrap();
        assert!(launch.end <= kernel.start);
        assert!(kernel.end <= teardown.start);
    }
}

#[test]
fn gputn_headline_improvements_hold() {
    let results = pingpong::run_all();
    let t = |s: Strategy| {
        results
            .iter()
            .find(|r| r.scenario.strategy == s)
            .unwrap()
            .target_completion
            .as_us_f64()
    };
    let tn = t(Strategy::GpuTn);
    // Paper: ~25% over GDS, ~35% over HDN; we accept the band the shape
    // argument needs.
    assert!((0.15..0.45).contains(&(1.0 - tn / t(Strategy::Gds))));
    assert!((0.25..0.50).contains(&(1.0 - tn / t(Strategy::Hdn))));
}
